package sim

import (
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/eventq"
	"repro/internal/gpu"
	"repro/internal/invariant"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// JobPhase is the engine-tracked lifecycle stage of a submitted job.
type JobPhase int

// Lifecycle stages: a job is Pending from submission until its arrival
// event is admitted at a round boundary, Active while the scheduler can
// see it (allocated or queued), and terminally Finished or Cancelled.
const (
	JobPending JobPhase = iota
	JobActive
	JobFinished
	JobCancelled
)

// String names the phase.
func (p JobPhase) String() string {
	switch p {
	case JobPending:
		return "pending"
	case JobActive:
		return "active"
	case JobFinished:
		return "finished"
	case JobCancelled:
		return "cancelled"
	}
	return fmt.Sprintf("JobPhase(%d)", int(p))
}

// arriveEvent admits a submitted job into the active set at the first
// round boundary at or after its time.
type arriveEvent struct{ st *sched.JobState }

// withdrawEvent removes a job (pending or active) from the simulation.
type withdrawEvent struct{ id int }

// Engine is the steppable core of the round-based simulator. It owns
// the virtual clock, the arrival/withdrawal event queue, the scheduler
// under test, per-round validation, and the metrics report, but —
// unlike the batch Run wrapper — it advances only when told to:
//
//	eng, _ := NewEngine(cluster, scheduler, opts)
//	eng.SubmitJob(j)                  // any time, including mid-run
//	for eng.HasPendingEvents() {
//	    eng.ProcessNextEvent()        // one round boundary per call
//	}
//	report, err := eng.Finish()
//
// The step contract (HasPendingEvents / PeekNextEventTime /
// ProcessNextEvent) lets a caller interleave the engine with other
// work: submit jobs between steps, read Snapshot() mid-run, or drive
// several engines under one shared clock by always stepping the engine
// whose PeekNextEventTime is earliest.
//
// An Engine is not safe for concurrent use; a long-lived service wraps
// it in a single goroutine (see internal/service) and publishes
// immutable Snapshots for readers.
type Engine struct {
	c         *cluster.Cluster
	s         sched.Scheduler
	opts      Options
	report    *metrics.Report
	log       *eventLogger
	chk       *invariant.Checker
	rateModel func(j *job.Job, a cluster.Alloc) float64
	freeState *cluster.State
	totalGPUs int

	queue           eventq.EventQueue
	pendingArrivals int
	cancelRequested map[int]bool
	phase           map[int]JobPhase
	all             []*job.Job
	active          []*sched.JobState
	prevDown        map[int]bool
	now             float64
	round           int
	stalled         int
	cancelled       int
	digest          uint64
	err             error
}

// NewEngine builds an engine over the cluster with the given scheduler
// and options. The engine starts empty at t=0; submit jobs with
// SubmitJob.
func NewEngine(c *cluster.Cluster, s sched.Scheduler, opts Options) (*Engine, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	e := &Engine{
		c:         c,
		s:         s,
		opts:      opts,
		report:    &metrics.Report{Scheduler: s.Name(), TotalGPUs: c.TotalGPUs()},
		log:       newEventLogger(opts.EventLog),
		freeState: cluster.NewState(c),
		totalGPUs: c.TotalGPUs(),

		cancelRequested: make(map[int]bool),
		phase:           make(map[int]JobPhase),
		prevDown:        map[int]bool{},
	}
	// Correctness oracle, enabled by Options.Validate: observes every
	// round's decisions and progress accounting and fails the run on
	// the first violated invariant. Rates are checked against the same
	// bottleneck model the simulator charges (full cluster, so node
	// straggler factors apply).
	if opts.Validate {
		e.chk = invariant.NewChecker(c)
		e.rateModel = func(j *job.Job, a cluster.Alloc) float64 { return sched.Rate(j, c, a) }
	}
	return e, nil
}

// SubmitJob validates the job and enqueues its arrival event at
// max(j.Arrival, now); the job enters the scheduler's view at the
// first round boundary at or after that time. Jobs may be submitted at
// any point of the engine's lifetime, which is what makes the
// simulator an online system: an idle engine picks the work back up on
// the next ProcessNextEvent.
func (e *Engine) SubmitJob(j *job.Job) error {
	if e.err != nil {
		return e.err
	}
	if err := j.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	usable := 0
	for _, t := range sched.UsableTypes(j) {
		usable += e.c.TotalOfType(t)
	}
	if usable < j.Workers {
		return fmt.Errorf("sim: %v can never be placed (needs %d workers, %d usable devices)",
			j, j.Workers, usable)
	}
	if _, ok := e.phase[j.ID]; ok {
		return fmt.Errorf("sim: duplicate job ID %d", j.ID)
	}
	st := &sched.JobState{
		Job:          j,
		Remaining:    j.TotalIters(),
		RoundsByType: make(map[gpu.Type]float64),
	}
	e.phase[j.ID] = JobPending
	e.all = append(e.all, j)
	arrival := j.Arrival
	if arrival < e.now {
		arrival = e.now
	}
	e.queue.Push(arrival, arriveEvent{st: st})
	e.pendingArrivals++
	return nil
}

// CancelJob enqueues a withdrawal event for the job at the current
// time: at the next processed boundary the job leaves the simulation,
// whether it was still pending or already running (a running job's
// devices free at that boundary, exactly like a completion). Cancelling
// an unknown, finished, or already-cancelled job is an error.
func (e *Engine) CancelJob(id int) error {
	if e.err != nil {
		return e.err
	}
	phase, ok := e.phase[id]
	if !ok {
		return fmt.Errorf("sim: cancel of unknown job %d", id)
	}
	switch {
	case phase == JobFinished:
		return fmt.Errorf("sim: cancel of finished job %d", id)
	case phase == JobCancelled || e.cancelRequested[id]:
		return fmt.Errorf("sim: job %d already cancelled", id)
	}
	e.cancelRequested[id] = true
	e.queue.Push(e.now, withdrawEvent{id: id})
	return nil
}

// HasPendingEvents reports whether the engine still has work: active
// jobs to schedule or queued arrival/withdrawal events. A false result
// is not terminal — SubmitJob re-arms the engine.
func (e *Engine) HasPendingEvents() bool {
	return e.err == nil && (len(e.active) > 0 || e.queue.Len() > 0)
}

// PeekNextEventTime returns the simulated time at which the next
// ProcessNextEvent call will act: the upcoming round boundary while
// jobs are active, or the boundary the engine will fast-forward to for
// the earliest queued event while idle. ok is false when the engine has
// nothing to do. A multi-cluster driver steps whichever engine reports
// the earliest time, giving N engines one shared clock.
func (e *Engine) PeekNextEventTime() (t float64, ok bool) {
	if !e.HasPendingEvents() {
		return 0, false
	}
	if len(e.active) > 0 {
		return e.now, true
	}
	return e.fastForwardTarget(), true
}

// fastForwardTarget is the round boundary at or after the earliest
// queued event (strictly after now).
func (e *Engine) fastForwardTarget() float64 {
	arr := e.queue.Peek().Time
	skip := math.Ceil(arr/e.opts.RoundLength) * e.opts.RoundLength
	if skip <= e.now {
		skip = e.now + e.opts.RoundLength
	}
	return skip
}

// Step processes the next event if there is one, reporting whether it
// did any work. It is the drive-to-completion primitive:
//
//	for {
//	    if ok, err := eng.Step(); err != nil { ... } else if !ok { break }
//	}
func (e *Engine) Step() (bool, error) {
	if !e.HasPendingEvents() {
		return false, e.err
	}
	if err := e.ProcessNextEvent(); err != nil {
		return false, err
	}
	return true, nil
}

// ProcessNextEvent advances the engine by exactly one round boundary:
// admit due arrivals and withdrawals, then either run one scheduling
// round (active jobs exist) or fast-forward the clock to the boundary
// of the earliest queued event (cluster idle). Errors — scheduler
// protocol violations, oracle violations, event-log failures — are
// sticky: the engine refuses further work after the first one.
func (e *Engine) ProcessNextEvent() error {
	if e.err != nil {
		return e.err
	}
	if e.round >= e.opts.MaxRounds {
		return e.fail(fmt.Errorf("sim: exceeded %d rounds with %d jobs unfinished",
			e.opts.MaxRounds, len(e.active)+e.pendingArrivals))
	}
	// Admit arrivals and withdrawals up to now.
	if err := e.admitDue(); err != nil {
		return e.fail(err)
	}
	if len(e.active) == 0 {
		if e.queue.Len() == 0 {
			return nil // idle: nothing to schedule, nothing queued
		}
		// Fast-forward to the round boundary at or after the next
		// arrival.
		e.now = e.fastForwardTarget()
		e.round++
		return nil
	}
	if err := e.runRound(); err != nil {
		return e.fail(err)
	}
	e.now += e.opts.RoundLength
	e.round++
	return nil
}

// fail records the first error and poisons the engine.
func (e *Engine) fail(err error) error {
	if e.err == nil {
		e.err = err
	}
	return e.err
}

// admitDue pops every event due at or before now. Arrivals append to
// the active set in (time, submission-order) order — identical to the
// batch simulator's sorted-trace admission; withdrawals remove the job
// from wherever it is.
func (e *Engine) admitDue() error {
	for e.queue.Len() > 0 && e.queue.Peek().Time <= e.now {
		ev := e.queue.Pop()
		switch p := ev.Payload.(type) {
		case arriveEvent:
			e.pendingArrivals--
			id := p.st.Job.ID
			if e.phase[id] == JobCancelled {
				continue // withdrawn before arrival
			}
			e.phase[id] = JobActive
			e.active = append(e.active, p.st)
			if err := e.log.emit(Event{Time: ev.Time, Round: e.round,
				Type: EventArrive, Job: id, Node: -1}); err != nil {
				return err
			}
		case withdrawEvent:
			delete(e.cancelRequested, p.id)
			if e.phase[p.id] == JobFinished {
				continue // finished before the withdrawal took effect
			}
			if e.phase[p.id] == JobActive {
				for i, st := range e.active {
					if st.Job.ID == p.id {
						e.active = append(e.active[:i], e.active[i+1:]...)
						break
					}
				}
			}
			e.phase[p.id] = JobCancelled
			e.cancelled++
			if err := e.log.emit(Event{Time: ev.Time, Round: e.round,
				Type: EventCancel, Job: p.id, Node: -1}); err != nil {
				return err
			}
		}
	}
	return nil
}

// runRound executes one full scheduling round at the current boundary:
// failure bookkeeping, the scheduler call, joint-decision validation
// against the persistent free state, and per-job progress accounting.
// This is the former body of the batch Run loop, unchanged.
func (e *Engine) runRound() error {
	// Failure handling: schedulers see nodes that are down *now*
	// (they cannot foresee an outage beginning mid-round), while
	// progress accounting uses any outage overlapping the round.
	viewDown := downNodes(e.opts.Failures, e.now, 1e-9)
	surpriseDown := downNodes(e.opts.Failures, e.now, e.opts.RoundLength)
	viewCluster := e.c
	if len(viewDown) > 0 {
		viewCluster = e.c.Without(viewDown)
	}
	for _, n := range sortedNodeIDs(viewDown) {
		if !e.prevDown[n] {
			e.report.Faults.NodeDown++
			if err := e.log.emit(Event{Time: e.now, Round: e.round, Type: EventNodeDown, Job: -1, Node: n}); err != nil {
				return err
			}
		}
	}
	for _, n := range sortedNodeIDs(e.prevDown) {
		if !viewDown[n] {
			e.report.Faults.NodeUp++
			if err := e.log.emit(Event{Time: e.now, Round: e.round, Type: EventNodeUp, Job: -1, Node: n}); err != nil {
				return err
			}
		}
	}
	e.prevDown = viewDown
	if e.prevDown == nil {
		e.prevDown = map[int]bool{}
	}

	ctx := &sched.Context{
		Now:         e.now,
		Round:       e.round,
		RoundLength: e.opts.RoundLength,
		Horizon:     horizon(e.now, e.active, e.opts.RoundLength),
		Cluster:     viewCluster,
		Jobs:        append([]*sched.JobState(nil), e.active...),
	}
	//lint:ignore wallclock DecisionTime reports the scheduler's real compute latency; it never feeds back into simulated time
	start := time.Now()
	decisions := e.s.Schedule(ctx)
	//lint:ignore wallclock real solver latency for the report, not simulated time
	e.report.DecisionTime += time.Since(start)
	e.report.Decisions++
	e.report.Rounds++
	e.foldDigest(ctx.Round, decisions)

	// Validate the joint decision.
	activeByID := make(map[int]*sched.JobState, len(e.active))
	for _, st := range e.active {
		activeByID[st.Job.ID] = st
	}
	// Validate against the persistent state: down nodes keep their
	// capacity there (the schedulers saw them with zero capacity via
	// viewCluster), so placements on them are rejected explicitly.
	sp := e.freeState.Savepoint()
	decisionIDs := make([]int, 0, len(decisions))
	for id := range decisions {
		decisionIDs = append(decisionIDs, id)
	}
	sort.Ints(decisionIDs)
	for _, id := range decisionIDs {
		alloc := decisions[id]
		st, ok := activeByID[id]
		if !ok {
			if alloc.Workers() > 0 {
				return fmt.Errorf("sim: %s allocated to unknown or inactive job %d", e.s.Name(), id)
			}
			continue
		}
		if err := sched.Validate(st.Job, alloc); err != nil {
			return fmt.Errorf("sim: %s: %w", e.s.Name(), err)
		}
		if alloc.Workers() > 0 {
			for _, p := range alloc {
				if p.Count > 0 && e.prevDown[p.Node] {
					return fmt.Errorf("sim: %s over-allocated: node %d is down, has 0 free %s, need %d",
						e.s.Name(), p.Node, p.Type, p.Count)
				}
			}
			if err := e.freeState.Allocate(alloc); err != nil {
				return fmt.Errorf("sim: %s over-allocated: %w", e.s.Name(), err)
			}
		}
	}
	e.freeState.Rollback(sp)

	// Apply decisions. First pass: detect reallocations and, when
	// contention modeling is on, count how many reallocated jobs
	// checkpoint through each node this round.
	type appliedJob struct {
		st      *sched.JobState
		alloc   cluster.Alloc
		prev    cluster.Alloc
		changed bool
	}
	applied := make([]appliedJob, 0, len(e.active))
	var nodeCheckpoints map[int]int
	if e.opts.CheckpointContention {
		// Only allocated when contention modeling is on: the common
		// no-contention round never touches the map.
		nodeCheckpoints = map[int]int{}
	}
	for _, st := range e.active {
		newAlloc := decisions[st.Job.ID].Canonical()
		prev := st.Alloc
		changed := !newAlloc.Equal(prev)
		st.Alloc = newAlloc
		applied = append(applied, appliedJob{st: st, alloc: newAlloc, prev: prev, changed: changed})
		if e.opts.CheckpointContention && changed {
			for _, p := range prev.Canonical() {
				nodeCheckpoints[p.Node]++
			}
			for _, p := range newAlloc {
				nodeCheckpoints[p.Node]++
			}
		}
	}

	// Second pass: advance each allocated job.
	anyAllocated := false
	heldThisRound := 0
	var stillActive []*sched.JobState
	var obs []invariant.JobRound
	observe := func(st *sched.JobState, alloc cluster.Alloc, before, window float64, killed bool) {
		obs = append(obs, invariant.JobRound{
			Job: st.Job, Alloc: alloc,
			RemainingBefore: before, RemainingAfter: st.Remaining,
			Window: window, Killed: killed,
		})
	}
	for _, aj := range applied {
		st, newAlloc, prev, changed := aj.st, aj.alloc, aj.prev, aj.changed
		remBefore := st.Remaining
		w := newAlloc.Workers()
		if w == 0 {
			if prev.Workers() > 0 {
				if err := e.log.emit(Event{Time: e.now, Round: e.round, Type: EventPause,
					Job: st.Job.ID, Node: -1}); err != nil {
					return err
				}
			}
			if e.chk != nil {
				observe(st, nil, remBefore, 0, false)
			}
			stillActive = append(stillActive, st)
			continue
		}
		anyAllocated = true
		if !st.Started {
			st.Started = true
			st.StartTime = e.now
			if err := e.log.emit(Event{Time: e.now, Round: e.round, Type: EventStart,
				Job: st.Job.ID, Node: -1, Alloc: newAlloc.String()}); err != nil {
				return err
			}
		}
		e.report.JobRoundAllocs++
		// Accumulates within the conservation oracle's tolerance
		// (invariant.Tol); checked against busy time per round.
		e.report.HeldGPUSeconds += float64(w) * e.opts.RoundLength
		heldThisRound += w
		realloc := changed && prev.Workers() > 0
		if realloc {
			e.report.JobRoundReallocs++
			st.Reallocations++
			if err := e.log.emit(Event{Time: e.now, Round: e.round, Type: EventRealloc,
				Job: st.Job.ID, Node: -1, Alloc: newAlloc.String()}); err != nil {
				return err
			}
		}

		delay := stallFor(st.Job.Model, changed, e.opts)
		if e.opts.CheckpointContention && changed {
			factor := 1
			for _, p := range append(newAlloc.Canonical(), prev.Canonical()...) {
				if n := nodeCheckpoints[p.Node]; n > factor {
					factor = n
				}
			}
			delay *= float64(factor)
		}
		if delay >= e.opts.RoundLength {
			delay = e.opts.RoundLength
		}
		window := e.opts.RoundLength - delay
		rate := sched.Rate(st.Job, e.c, newAlloc)
		// A node failing during the round kills the gang's progress
		// for the whole round: the work since the last checkpoint is
		// lost and the job re-places at the next boundary.
		if len(surpriseDown) > 0 {
			killed := false
			for _, p := range newAlloc {
				if surpriseDown[p.Node] {
					killed = true
					break
				}
			}
			if killed {
				lost := rate * window
				if lost > st.Remaining {
					lost = st.Remaining
				}
				// Accumulates within the oracle's tolerance (invariant.Tol).
				e.report.Faults.LostIterations += lost
				e.report.Faults.Recoveries++
				if e.chk != nil {
					observe(st, newAlloc, remBefore, window, true)
				}
				stillActive = append(stillActive, st)
				continue
			}
		}
		st.Rounds++
		for _, t := range newAlloc.Types() {
			st.RoundsByType[t]++
		}

		if rate <= 0 {
			// Allocated but cannot progress (validated types make
			// this unreachable, but stay safe).
			if e.chk != nil {
				observe(st, newAlloc, remBefore, window, false)
			}
			stillActive = append(stillActive, st)
			continue
		}
		if st.Remaining <= rate*window {
			// Finishes within this round.
			tau := st.Remaining / rate
			st.Remaining = 0
			// Both accumulate within invariant.Tol tolerance; the
			// invariant oracle re-derives them each round.
			st.Attained += float64(w) * tau
			e.report.BusyGPUSeconds += float64(w) * tau
			finish := e.now + delay + tau
			if e.opts.QuantizeCompletions {
				finish = e.now + e.opts.RoundLength
			}
			e.report.Jobs = append(e.report.Jobs, jobResult(st, finish, len(e.all), e.totalGPUs))
			e.phase[st.Job.ID] = JobFinished
			if err := e.log.emit(Event{Time: finish, Round: e.round, Type: EventFinish,
				Job: st.Job.ID, Node: -1}); err != nil {
				return err
			}
			if finish > e.report.Makespan {
				e.report.Makespan = finish
			}
			if e.chk != nil {
				observe(st, newAlloc, remBefore, window, false)
			}
			// Job leaves the active set; its GPUs are free from the
			// next boundary on (the simulator rebuilds allocations
			// each round).
			continue
		}
		// All three accumulate within invariant.Tol tolerance; the
		// oracle checks conservation of work to that tolerance each round.
		st.Remaining -= rate * window
		st.Attained += float64(w) * window
		e.report.BusyGPUSeconds += float64(w) * window
		if e.chk != nil {
			observe(st, newAlloc, remBefore, window, false)
		}
		stillActive = append(stillActive, st)
	}
	e.active = stillActive
	if e.chk != nil {
		e.chk.CheckRound(invariant.Round{
			Index: e.round, Now: e.now, Length: e.opts.RoundLength,
			Down: e.prevDown, Jobs: obs, Scheduler: e.s, Rate: e.rateModel,
		})
		// Fail fast so the offending round is the one in the error.
		if err := e.chk.Err(); err != nil {
			return fmt.Errorf("sim: %s: %w", e.s.Name(), err)
		}
	}
	e.report.RoundHeld = append(e.report.RoundHeld, heldThisRound)
	e.report.RoundStarts = append(e.report.RoundStarts, e.now)

	if !anyAllocated && len(e.active) > 0 {
		e.stalled++
		if e.stalled >= e.opts.StallLimit {
			return fmt.Errorf("sim: %s stalled for %d rounds with %d active jobs at t=%.0fs",
				e.s.Name(), e.stalled, len(e.active), e.now)
		}
	} else {
		e.stalled = 0
	}
	return nil
}

// foldDigest chains this round's canonical decisions into the engine's
// running schedule digest: an FNV-64a hash of the round index and each
// allocated job's ID and sorted (node, type, count) placements, chained
// across rounds so reordering cannot cancel out. The scheme is
// identical to the golden-digest recorder in determinism_test.go; only
// integer decision data enters the hash, so the digest is stable across
// platforms and Go versions as long as the schedule itself is. Recovery
// uses it as its oracle: a journal replay must reproduce the digest
// recorded after every round, byte for byte.
func (e *Engine) foldDigest(round int, decisions map[int]cluster.Alloc) {
	h := fnv.New64a()
	write := func(v int) {
		var b [8]byte
		u := uint64(v)
		for i := range b {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	write(round)
	ids := make([]int, 0, len(decisions))
	for id := range decisions {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		if decisions[id].Workers() == 0 {
			continue
		}
		write(id)
		for _, p := range decisions[id].Canonical() {
			write(p.Node)
			write(int(p.Type))
			write(p.Count)
		}
	}
	e.digest = e.digest*1099511628211 + h.Sum64()
}

// Digest returns the chained per-round schedule digest over every
// scheduling round executed so far (idle fast-forward rounds do not
// contribute). Two engines that processed identical operation sequences
// have identical digests.
func (e *Engine) Digest() uint64 { return e.digest }

// Finish sorts the report and, when the oracle is enabled, validates
// it against every submitted job. Finish does not stop the engine: more
// jobs may be submitted and processed afterwards, and Finish called
// again.
func (e *Engine) Finish() (*metrics.Report, error) {
	if e.err != nil {
		return nil, e.err
	}
	e.report.SortJobsByID()
	if e.chk != nil {
		e.chk.CheckReport(e.report, e.all)
		if err := e.chk.Err(); err != nil {
			return nil, e.fail(fmt.Errorf("sim: %s: %w", e.s.Name(), err))
		}
	}
	return e.report, nil
}

// Now returns the engine's current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// ActiveJobs returns the number of admitted, unfinished jobs the
// scheduler currently sees. Together with PendingJobs it is the
// engine's queue depth, which inter-cluster routers read on every
// submission — hence an O(1) accessor instead of a full Snapshot.
func (e *Engine) ActiveJobs() int { return len(e.active) }

// PendingJobs returns submitted jobs whose arrival event has not yet
// been admitted at a round boundary.
func (e *Engine) PendingJobs() int { return e.pendingArrivals }

// HeldGPUs returns the number of devices held in the most recently
// executed scheduling round (0 before the first round).
func (e *Engine) HeldGPUs() int {
	if n := len(e.report.RoundHeld); n > 0 {
		return e.report.RoundHeld[n-1]
	}
	return 0
}

// Round returns the next round index (rounds consumed so far,
// including idle fast-forwards).
func (e *Engine) Round() int { return e.round }

// Err returns the sticky error that poisoned the engine, if any.
func (e *Engine) Err() error { return e.err }

// Phase reports the lifecycle stage of a submitted job.
func (e *Engine) Phase(id int) (JobPhase, bool) {
	p, ok := e.phase[id]
	return p, ok
}
