package sim

import (
	"repro/internal/metrics"
)

// JobSnapshot is the frozen state of one unfinished job at snapshot
// time. Every field is a value or a deep copy: holding a JobSnapshot
// never aliases engine-owned memory.
type JobSnapshot struct {
	ID      int     `json:"id"`
	Model   string  `json:"model"`
	Workers int     `json:"workers"`
	Arrival float64 `json:"arrival_s"`
	// Remaining and TotalIters track training progress.
	Remaining  float64 `json:"remaining_iters"`
	TotalIters float64 `json:"total_iters"`
	// Running reports whether the job held an allocation in the last
	// round; Alloc is that allocation (nil when paused or pending).
	Running bool   `json:"running"`
	Alloc   string `json:"alloc,omitempty"`
	// Started and StartTime record the first allocation.
	Started       bool    `json:"started"`
	StartTime     float64 `json:"start_s"`
	Reallocations int     `json:"reallocations"`
	// Phase is the lifecycle stage ("pending" or "active" — terminal
	// jobs appear in the report, not the snapshot).
	Phase string `json:"phase"`
}

// Snapshot is an immutable point-in-time view of an Engine, built by
// copy-on-publish: Engine.Snapshot deep-copies everything a reader
// could see, so a published *Snapshot can be read from any goroutine
// without synchronization while the engine keeps stepping. A long-lived
// service publishes one per round through an atomic pointer; dashboard
// and API readers therefore never contend with the scheduler.
type Snapshot struct {
	// Now is the simulated time (seconds); Round the next round index.
	Now   float64 `json:"now_s"`
	Round int     `json:"round"`
	// Scheduler is the policy name.
	Scheduler string `json:"scheduler"`
	// TotalGPUs is the cluster size; HeldGPUs the devices held in the
	// most recent executed round (0 before the first round).
	TotalGPUs int `json:"total_gpus"`
	HeldGPUs  int `json:"held_gpus"`
	// Pending counts submitted jobs not yet admitted at a boundary;
	// Active lists every admitted, unfinished job; Completed and
	// Cancelled count terminal jobs.
	Pending   int           `json:"pending"`
	Active    []JobSnapshot `json:"active"`
	Completed int           `json:"completed"`
	Cancelled int           `json:"cancelled"`
	// Digest is the engine's chained per-round schedule digest (see
	// Engine.Digest); the crash-recovery chaos harness compares it
	// against an uninterrupted replay of the journal.
	Digest uint64 `json:"digest"`
	// Phases maps every submitted job ID to its lifecycle stage
	// ("pending", "active", "finished", "cancelled"), so status queries
	// resolve against the snapshot instead of the engine.
	Phases map[int]string `json:"phases,omitempty"`
	// Report is a deep copy of the metrics accumulated so far
	// (completed jobs, utilization series, fault counters).
	Report *metrics.Report `json:"-"`
}

// FreeGPUs is the devices not held in the most recent round.
func (s *Snapshot) FreeGPUs() int { return s.TotalGPUs - s.HeldGPUs }

// Snapshot publishes an immutable view of the engine's current state.
// It must be called from the goroutine driving the engine (between
// steps); the returned value may then be shared freely.
func (e *Engine) Snapshot() *Snapshot {
	snap := &Snapshot{
		Now:       e.now,
		Round:     e.round,
		Scheduler: e.s.Name(),
		TotalGPUs: e.totalGPUs,
		Pending:   e.pendingArrivals,
		Completed: len(e.report.Jobs),
		Cancelled: e.cancelled,
		Digest:    e.digest,
		Report:    e.report.Clone(),
	}
	if n := len(e.report.RoundHeld); n > 0 {
		snap.HeldGPUs = e.report.RoundHeld[n-1]
	}
	// Iterate the submission-ordered slice, not the phase map, so the
	// copy is deterministic.
	snap.Phases = make(map[int]string, len(e.all))
	for _, j := range e.all {
		snap.Phases[j.ID] = e.phase[j.ID].String()
	}
	snap.Active = make([]JobSnapshot, 0, len(e.active))
	for _, st := range e.active {
		js := JobSnapshot{
			ID:            st.Job.ID,
			Model:         st.Job.Model,
			Workers:       st.Job.Workers,
			Arrival:       st.Job.Arrival,
			Remaining:     st.Remaining,
			TotalIters:    st.Job.TotalIters(),
			Running:       st.Running(),
			Started:       st.Started,
			StartTime:     st.StartTime,
			Reallocations: st.Reallocations,
			Phase:         JobActive.String(),
		}
		if st.Running() {
			js.Alloc = st.Alloc.String()
		}
		snap.Active = append(snap.Active, js)
	}
	return snap
}
