package sim

import (
	"encoding/json"
	"testing"
)

// TestSnapshotImmutableUnderStepping takes a mid-run snapshot and
// checks it does not change while the engine keeps advancing — the
// copy-on-publish contract concurrent readers rely on.
func TestSnapshotImmutableUnderStepping(t *testing.T) {
	e, err := NewEngine(twoNodeCluster(), fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitJob(simpleJob(0, 2, 20000, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitJob(simpleJob(1, 1, 50000, 700)); err != nil {
		t.Fatal(err)
	}
	if err := e.ProcessNextEvent(); err != nil {
		t.Fatal(err)
	}
	snap := e.Snapshot()
	if snap.Now != 360 || snap.Round != 1 {
		t.Fatalf("snapshot at now=%v round=%d, want 360/1", snap.Now, snap.Round)
	}
	if len(snap.Active) != 1 || snap.Active[0].ID != 0 {
		t.Fatalf("active = %+v, want job 0 only", snap.Active)
	}
	if !snap.Active[0].Running || snap.Active[0].Alloc == "" {
		t.Errorf("job 0 should be running with an allocation, got %+v", snap.Active[0])
	}
	if snap.Pending != 1 {
		t.Errorf("pending = %d, want 1 (job 1 arrives at t=700)", snap.Pending)
	}
	if snap.HeldGPUs != 2 || snap.FreeGPUs() != snap.TotalGPUs-2 {
		t.Errorf("held = %d free = %d of %d, want 2 held", snap.HeldGPUs, snap.FreeGPUs(), snap.TotalGPUs)
	}

	// Freeze the observable state, keep stepping, re-compare.
	before, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	reportJobs := len(snap.Report.Jobs)
	driveEngine(t, e)
	after, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Errorf("snapshot mutated while engine ran:\nbefore: %s\nafter:  %s", before, after)
	}
	if len(snap.Report.Jobs) != reportJobs {
		t.Errorf("snapshot report grew from %d to %d jobs", reportJobs, len(snap.Report.Jobs))
	}
	if final := e.Snapshot(); final.Completed != 2 || len(final.Active) != 0 || final.Pending != 0 {
		t.Errorf("final snapshot = %d completed, %d active, %d pending; want 2/0/0",
			final.Completed, len(final.Active), final.Pending)
	}
}
