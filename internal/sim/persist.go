package sim

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/invariant"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// stateVersion is bumped whenever the serialized engine layout changes
// incompatibly; RestoreEngine refuses other versions.
const stateVersion = 1

// optsFingerprint captures the simulation options that shape the
// schedule itself. A checkpoint taken under one set of physics cannot
// be resumed under another — the replayed rounds would diverge from the
// journal's recorded digests — so RestoreEngine requires an exact
// match. Reporting-only options (Validate, EventLog) may differ freely.
type optsFingerprint struct {
	RoundLength         float64   `json:"round_length_s"`
	UseModelCosts       bool      `json:"use_model_costs"`
	FlatDelay           float64   `json:"flat_delay_s"`
	QuantizeCompletions bool      `json:"quantize_completions"`
	CheckpointContention bool     `json:"checkpoint_contention"`
	Failures            []Failure `json:"failures,omitempty"`
}

func fingerprint(o Options) optsFingerprint {
	return optsFingerprint{
		RoundLength:          o.RoundLength,
		UseModelCosts:        o.UseModelCosts,
		FlatDelay:            o.FlatDelay,
		QuantizeCompletions:  o.QuantizeCompletions,
		CheckpointContention: o.CheckpointContention,
		Failures:             o.Failures,
	}
}

func (f optsFingerprint) equal(g optsFingerprint) bool {
	a, errA := json.Marshal(f)
	b, errB := json.Marshal(g)
	return errA == nil && errB == nil && string(a) == string(b)
}

// activeJobState is the serialized form of one admitted, unfinished
// job's scheduling state.
type activeJobState struct {
	ID        int     `json:"id"`
	Remaining float64 `json:"remaining_iters"`
	Attained  float64 `json:"attained_gpu_s"`
	Rounds    int     `json:"rounds"`
	// RoundsByType is dense, indexed by gpu.Type; zero entries restore
	// to an absent map key, matching how the engine builds the map.
	RoundsByType  []float64     `json:"rounds_by_type"`
	Alloc         cluster.Alloc `json:"alloc,omitempty"`
	Started       bool          `json:"started"`
	StartTime     float64       `json:"start_s"`
	Reallocations int           `json:"reallocations"`
}

// queuedEvent is the serialized form of one pending arrival or
// withdrawal. Events are stored in pop order; re-pushing them in that
// order onto a fresh queue preserves their relative priority.
type queuedEvent struct {
	Time float64 `json:"t"`
	Kind string  `json:"kind"` // "arrive" or "withdraw"
	ID   int     `json:"id"`
}

// engineState is the complete serialized engine: everything needed to
// resume stepping with byte-identical per-round schedule digests. It is
// the payload of the service's periodic checkpoints.
type engineState struct {
	Version   int             `json:"version"`
	Scheduler string          `json:"scheduler"`
	Opts      optsFingerprint `json:"opts"`
	Now       float64         `json:"now_s"`
	Round     int             `json:"round"`
	Stalled   int             `json:"stalled"`
	Cancelled int             `json:"cancelled"`
	Digest    uint64          `json:"digest"`
	// Jobs lists every submitted job in submission order; Phases is the
	// aligned lifecycle stage of each.
	Jobs   []*job.Job `json:"jobs"`
	Phases []JobPhase `json:"phases"`
	// Active preserves admission order — schedulers see jobs in this
	// order, so it is part of the schedule-determining state.
	Active          []activeJobState `json:"active"`
	Queue           []queuedEvent    `json:"queue"`
	CancelRequested []int            `json:"cancel_requested,omitempty"`
	PrevDown        []int            `json:"prev_down,omitempty"`
	Report          json.RawMessage  `json:"report"`
}

// MarshalState serializes the engine's full scheduling state for a
// checkpoint. It must be called from the goroutine driving the engine,
// between steps, on a healthy engine (a poisoned engine has nothing
// worth persisting).
func (e *Engine) MarshalState() ([]byte, error) {
	if e.err != nil {
		return nil, fmt.Errorf("sim: cannot checkpoint a failed engine: %w", e.err)
	}
	st := engineState{
		Version:   stateVersion,
		Scheduler: e.s.Name(),
		Opts:      fingerprint(e.opts),
		Now:       e.now,
		Round:     e.round,
		Stalled:   e.stalled,
		Cancelled: e.cancelled,
		Digest:    e.digest,
		Jobs:      e.all,
	}
	st.Phases = make([]JobPhase, len(e.all))
	for i, j := range e.all {
		st.Phases[i] = e.phase[j.ID]
	}
	st.Active = make([]activeJobState, 0, len(e.active))
	for _, a := range e.active {
		as := activeJobState{
			ID:            a.Job.ID,
			Remaining:     a.Remaining,
			Attained:      a.Attained,
			Rounds:        a.Rounds,
			RoundsByType:  make([]float64, gpu.NumTypes),
			Alloc:         a.Alloc,
			Started:       a.Started,
			StartTime:     a.StartTime,
			Reallocations: a.Reallocations,
		}
		for t := gpu.Type(0); t < gpu.NumTypes; t++ {
			as.RoundsByType[t] = a.RoundsByType[t]
		}
		st.Active = append(st.Active, as)
	}
	for _, ev := range e.queue.Snapshot() {
		switch p := ev.Payload.(type) {
		case arriveEvent:
			st.Queue = append(st.Queue, queuedEvent{Time: ev.Time, Kind: "arrive", ID: p.st.Job.ID})
		case withdrawEvent:
			st.Queue = append(st.Queue, queuedEvent{Time: ev.Time, Kind: "withdraw", ID: p.id})
		default:
			return nil, fmt.Errorf("sim: unknown queued event payload %T", ev.Payload)
		}
	}
	st.CancelRequested = sortedIntKeys(e.cancelRequested)
	st.PrevDown = sortedIntKeys(e.prevDown)
	report, err := json.Marshal(e.report)
	if err != nil {
		return nil, fmt.Errorf("sim: marshal report: %w", err)
	}
	st.Report = report
	data, err := json.Marshal(&st)
	if err != nil {
		return nil, fmt.Errorf("sim: marshal state: %w", err)
	}
	return data, nil
}

func sortedIntKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// RestoreEngine rebuilds an engine from MarshalState output: same
// cluster, a fresh scheduler of the same policy, and options whose
// schedule-shaping fields match the checkpoint's. The restored engine
// continues exactly where the checkpointed one stopped — same clock,
// same admission order, same pending events, same chained digest — so
// replaying the journal tail after it reproduces the original run's
// per-round digests. Every scheduler in the repository derives its
// decisions from the per-round Context and the JobStates restored here
// (cross-round scheduler fields are caches or reporting), which is what
// makes a fresh scheduler instance safe.
func RestoreEngine(c *cluster.Cluster, s sched.Scheduler, opts Options, data []byte) (*Engine, error) {
	var st engineState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("sim: restore: %w", err)
	}
	if st.Version != stateVersion {
		return nil, fmt.Errorf("sim: restore: state version %d, this binary speaks %d", st.Version, stateVersion)
	}
	if st.Scheduler != s.Name() {
		return nil, fmt.Errorf("sim: restore: checkpoint is for scheduler %q, got %q", st.Scheduler, s.Name())
	}
	e, err := NewEngine(c, s, opts)
	if err != nil {
		return nil, err
	}
	if fp := fingerprint(e.opts); !fp.equal(st.Opts) {
		return nil, fmt.Errorf("sim: restore: simulation options changed since checkpoint (have %+v, checkpoint %+v)", fp, st.Opts)
	}
	if len(st.Phases) != len(st.Jobs) {
		return nil, fmt.Errorf("sim: restore: %d phases for %d jobs", len(st.Phases), len(st.Jobs))
	}

	e.now = st.Now
	e.round = st.Round
	e.stalled = st.Stalled
	e.cancelled = st.Cancelled
	e.digest = st.Digest

	byID := make(map[int]*job.Job, len(st.Jobs))
	for i, j := range st.Jobs {
		if j == nil {
			return nil, fmt.Errorf("sim: restore: nil job at index %d", i)
		}
		if _, dup := byID[j.ID]; dup {
			return nil, fmt.Errorf("sim: restore: duplicate job ID %d", j.ID)
		}
		byID[j.ID] = j
		e.all = append(e.all, j)
		e.phase[j.ID] = st.Phases[i]
	}
	for _, as := range st.Active {
		j, ok := byID[as.ID]
		if !ok {
			return nil, fmt.Errorf("sim: restore: active job %d not in job list", as.ID)
		}
		js := &sched.JobState{
			Job:           j,
			Remaining:     as.Remaining,
			Attained:      as.Attained,
			Rounds:        as.Rounds,
			RoundsByType:  make(map[gpu.Type]float64),
			Alloc:         as.Alloc,
			Started:       as.Started,
			StartTime:     as.StartTime,
			Reallocations: as.Reallocations,
		}
		for t, v := range as.RoundsByType {
			if v > 0 {
				js.RoundsByType[gpu.Type(t)] = v
			}
		}
		e.active = append(e.active, js)
	}
	for _, ev := range st.Queue {
		switch ev.Kind {
		case "arrive":
			j, ok := byID[ev.ID]
			if !ok {
				return nil, fmt.Errorf("sim: restore: queued arrival for unknown job %d", ev.ID)
			}
			e.queue.Push(ev.Time, arriveEvent{st: &sched.JobState{
				Job:          j,
				Remaining:    j.TotalIters(),
				RoundsByType: make(map[gpu.Type]float64),
			}})
			e.pendingArrivals++
		case "withdraw":
			e.queue.Push(ev.Time, withdrawEvent{id: ev.ID})
		default:
			return nil, fmt.Errorf("sim: restore: unknown queued event kind %q", ev.Kind)
		}
	}
	for _, id := range st.CancelRequested {
		e.cancelRequested[id] = true
	}
	for _, n := range st.PrevDown {
		e.prevDown[n] = true
	}
	report := &metrics.Report{}
	if err := json.Unmarshal(st.Report, report); err != nil {
		return nil, fmt.Errorf("sim: restore report: %w", err)
	}
	if report.TotalGPUs != c.TotalGPUs() {
		return nil, fmt.Errorf("sim: restore: checkpoint cluster has %d GPUs, this cluster %d",
			report.TotalGPUs, c.TotalGPUs())
	}
	e.report = report
	// A fresh invariant checker (when Validate is on) picks up at the
	// next round; per-round checks are self-contained and the final
	// report check runs against the restored report and job list.
	if opts.Validate {
		e.chk = invariant.NewChecker(c)
	}
	return e, nil
}
