package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// EventType labels one simulator event.
type EventType string

// Event types emitted by the simulator.
const (
	// EventArrive: a job entered the queue.
	EventArrive EventType = "arrive"
	// EventStart: a job received its first allocation.
	EventStart EventType = "start"
	// EventRealloc: a running job's allocation changed
	// (checkpoint-restart).
	EventRealloc EventType = "realloc"
	// EventPause: a running job lost its allocation (preempted to zero).
	EventPause EventType = "pause"
	// EventFinish: a job completed all its iterations.
	EventFinish EventType = "finish"
	// EventCancel: a job was withdrawn (Engine.CancelJob) before
	// completing; pending and running jobs alike leave the simulation
	// at the boundary that processes the withdrawal.
	EventCancel EventType = "cancel"
	// EventNodeDown / EventNodeUp: a machine outage began/ended at a
	// round boundary.
	EventNodeDown EventType = "node_down"
	EventNodeUp   EventType = "node_up"
)

// Event is one line of the simulation event log.
type Event struct {
	// Time is the simulated time in seconds.
	Time float64 `json:"t"`
	// Round is the scheduling round index.
	Round int `json:"round"`
	// Type is the event kind.
	Type EventType `json:"type"`
	// Job is the job ID for job events (-1 for node events).
	Job int `json:"job"`
	// Node is the machine for node events (-1 for job events).
	Node int `json:"node"`
	// Alloc describes the job's allocation after the event.
	Alloc string `json:"alloc,omitempty"`
}

// eventLogger serializes events as JSON lines; a nil logger drops them.
type eventLogger struct {
	enc *json.Encoder
}

func newEventLogger(w io.Writer) *eventLogger {
	if w == nil {
		return nil
	}
	return &eventLogger{enc: json.NewEncoder(w)}
}

func (l *eventLogger) emit(e Event) error {
	if l == nil {
		return nil
	}
	if err := l.enc.Encode(e); err != nil {
		return fmt.Errorf("sim: event log: %w", err)
	}
	return nil
}

// ReadEvents parses an event log produced via Options.EventLog.
func ReadEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("sim: event log line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sim: event log: %w", err)
	}
	return out, nil
}
