package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
)

// fifo is a minimal test scheduler: keeps running jobs where they are,
// then starts waiting jobs first-come-first-served on any free devices
// in descending-throughput order.
type fifo struct{}

func (fifo) Name() string { return "test-fifo" }

func (fifo) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	out := make(map[int]cluster.Alloc)
	free := cluster.NewState(ctx.Cluster)
	for _, st := range ctx.Jobs {
		if st.Running() && free.Allocate(st.Alloc) == nil {
			out[st.Job.ID] = st.Alloc
		}
	}
	for _, st := range ctx.Jobs {
		if _, ok := out[st.Job.ID]; ok {
			continue
		}
		if a, ok := sched.PlaceAnyType(free, sched.UsableTypes(st.Job), st.Job.Workers); ok {
			if err := free.Allocate(a); err == nil {
				out[st.Job.ID] = a
			}
		}
	}
	return out
}

// churn reallocates every running job between two fixed placements each
// round to force reallocation penalties.
type churn struct{}

func (churn) Name() string { return "test-churn" }

func (churn) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	out := make(map[int]cluster.Alloc)
	if len(ctx.Jobs) == 0 {
		return out
	}
	st := ctx.Jobs[0]
	node := ctx.Round % 2 // bounce between node 0 and node 1
	out[st.Job.ID] = cluster.Alloc{{Node: node, Type: gpu.V100, Count: st.Job.Workers}}
	return out
}

// idle never allocates anything.
type idle struct{}

func (idle) Name() string                                  { return "test-idle" }
func (idle) Schedule(*sched.Context) map[int]cluster.Alloc { return nil }

// badGang allocates half a gang.
type badGang struct{}

func (badGang) Name() string { return "test-badgang" }
func (badGang) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	st := ctx.Jobs[0]
	return map[int]cluster.Alloc{
		st.Job.ID: {{Node: 0, Type: gpu.V100, Count: st.Job.Workers - 1}},
	}
}

// overbook allocates the same devices to two jobs.
type overbook struct{}

func (overbook) Name() string { return "test-overbook" }
func (overbook) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	out := make(map[int]cluster.Alloc)
	for _, st := range ctx.Jobs {
		out[st.Job.ID] = cluster.Alloc{{Node: 0, Type: gpu.V100, Count: st.Job.Workers}}
	}
	return out
}

// ghost allocates to a nonexistent job ID.
type ghost struct{}

func (ghost) Name() string { return "test-ghost" }
func (ghost) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	return map[int]cluster.Alloc{
		99999: {{Node: 0, Type: gpu.V100, Count: 1}},
	}
}

func simpleJob(id, workers int, iters float64, arrival float64) *job.Job {
	return &job.Job{
		ID: id, Name: "j", Model: "unit-test", Workers: workers,
		Epochs: int(iters), ItersPerEpoch: 1, Arrival: arrival,
		Throughput: map[gpu.Type]float64{gpu.V100: 10, gpu.K80: 2},
	}
}

func twoNodeCluster() *cluster.Cluster {
	return cluster.New(gpu.Fleet{gpu.V100: 4}, gpu.Fleet{gpu.V100: 4, gpu.K80: 2})
}

func TestSingleJobExactJCT(t *testing.T) {
	c := twoNodeCluster()
	j := simpleJob(0, 2, 1000, 0) // 1000 iters at 2x10 iters/s = 50s work
	opts := ValidatedOptions()
	r, err := Run(c, []*job.Job{j}, fifo{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) != 1 {
		t.Fatalf("completed %d jobs", len(r.Jobs))
	}
	// First allocation pays the 10s flat delay, then 50s of work.
	want := 10.0 + 50.0
	if got := r.Jobs[0].JCT(); math.Abs(got-want) > 1e-9 {
		t.Errorf("JCT = %v, want %v", got, want)
	}
	if r.Makespan != want {
		t.Errorf("Makespan = %v, want %v", r.Makespan, want)
	}
}

func TestMultiRoundProgress(t *testing.T) {
	c := twoNodeCluster()
	// 20000 iters at 20 iters/s = 1000s of work: needs 3 rounds
	// (350 + 360 + rest with the initial 10s stall in round 1).
	j := simpleJob(0, 2, 20000, 0)
	r, err := Run(c, []*job.Job{j}, fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := 10.0 + 1000.0
	if got := r.Jobs[0].JCT(); math.Abs(got-want) > 1e-9 {
		t.Errorf("JCT = %v, want %v", got, want)
	}
	if r.Rounds != 3 {
		t.Errorf("Rounds = %d, want 3", r.Rounds)
	}
}

func TestBusySecondsAndUtilizationBound(t *testing.T) {
	c := twoNodeCluster()
	jobs := []*job.Job{
		simpleJob(0, 2, 5000, 0),
		simpleJob(1, 4, 8000, 0),
		simpleJob(2, 1, 2000, 0),
	}
	r, err := Run(c, jobs, fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if u := r.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %v out of (0,1]", u)
	}
	// Busy seconds must equal sum over jobs of iters/perWorkerRate
	// (workers * iters / (workers*rate)) when all run on V100.
	wantBusy := (5000.0/20)*2 + (8000.0/40)*4 + (2000.0/10)*1
	if math.Abs(r.BusyGPUSeconds-wantBusy) > 1e-6 {
		t.Errorf("BusyGPUSeconds = %v, want %v", r.BusyGPUSeconds, wantBusy)
	}
}

func TestWorkConservation(t *testing.T) {
	c := twoNodeCluster()
	jobs := []*job.Job{
		simpleJob(0, 2, 5000, 0),
		simpleJob(1, 4, 8000, 100),
		simpleJob(2, 6, 12000, 700),
	}
	r, err := Run(c, jobs, fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) != 3 {
		t.Fatalf("completed %d jobs, want 3", len(r.Jobs))
	}
	total := 0.0
	for _, jr := range r.Jobs {
		total += jr.TotalIters
	}
	if total != 25000 {
		t.Errorf("recorded iters = %v, want 25000", total)
	}
}

func TestLateArrivalFastForward(t *testing.T) {
	c := twoNodeCluster()
	j := simpleJob(0, 1, 100, 3600.5) // arrives mid-round
	r, err := Run(c, []*job.Job{j}, fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Admitted at the next boundary (3960), 10s stall, 10s work.
	want := 3960.0 + 10 + 10
	if got := r.Jobs[0].Finish; math.Abs(got-want) > 1e-9 {
		t.Errorf("Finish = %v, want %v", got, want)
	}
	if got := r.Jobs[0].Start; got != 3960 {
		t.Errorf("Start = %v, want 3960", got)
	}
}

func TestArrivalExactlyOnBoundary(t *testing.T) {
	c := twoNodeCluster()
	j := simpleJob(0, 1, 100, 720)
	r, err := Run(c, []*job.Job{j}, fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Jobs[0].Start; got != 720 {
		t.Errorf("Start = %v, want 720 (boundary arrival admits same round)", got)
	}
}

func TestChurnPaysReallocationEveryRound(t *testing.T) {
	c := twoNodeCluster()
	// 14000 iters at 10 iters/s (1 worker) = 1400s: 4 rounds of churn.
	j := simpleJob(0, 1, 14000, 0)
	rChurn, err := Run(c, []*job.Job{j}, churn{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	rSticky, err := Run(c, []*job.Job{j}, fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rChurn.Jobs[0].JCT() <= rSticky.Jobs[0].JCT() {
		t.Errorf("churn JCT %v not worse than sticky %v",
			rChurn.Jobs[0].JCT(), rSticky.Jobs[0].JCT())
	}
	// Every round after the first is a reallocation for churn.
	if rChurn.JobRoundReallocs != rChurn.JobRoundAllocs-1 {
		t.Errorf("churn reallocs = %d of %d job-rounds",
			rChurn.JobRoundReallocs, rChurn.JobRoundAllocs)
	}
	if rSticky.JobRoundReallocs != 0 {
		t.Errorf("sticky scheduler recorded %d reallocs", rSticky.JobRoundReallocs)
	}
	if rChurn.Jobs[0].Reallocations == 0 {
		t.Error("per-job reallocation count not recorded")
	}
}

func TestModelCostMode(t *testing.T) {
	c := twoNodeCluster()
	mk := func() *job.Job {
		j := simpleJob(0, 1, 7000, 0) // ~700s of work: 3 rounds
		j.Model = "ResNet-50"
		return j
	}
	optsFlat := ValidatedOptions()
	optsModel := ValidatedOptions()
	optsModel.UseModelCosts = true
	rFlat, err := Run(c, []*job.Job{mk()}, fifo{}, optsFlat)
	if err != nil {
		t.Fatal(err)
	}
	rModel, err := Run(c, []*job.Job{mk()}, fifo{}, optsModel)
	if err != nil {
		t.Fatal(err)
	}
	// Model mode charges a periodic save every round even without
	// reallocation, but its restore (7.56s) is smaller than the flat
	// 10s; either way the JCTs must differ and both exceed pure work.
	if rFlat.Jobs[0].JCT() == rModel.Jobs[0].JCT() {
		t.Error("model-cost mode had no effect")
	}
	if rModel.Jobs[0].JCT() <= 700 {
		t.Errorf("model-cost JCT %v does not include checkpoint time", rModel.Jobs[0].JCT())
	}
}

func TestQuantizedCompletions(t *testing.T) {
	c := twoNodeCluster()
	j := simpleJob(0, 2, 1000, 0)
	opts := ValidatedOptions()
	opts.QuantizeCompletions = true
	r, err := Run(c, []*job.Job{j}, fifo{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Jobs[0].Finish; got != 360 {
		t.Errorf("quantized finish = %v, want 360", got)
	}
}

func TestGangViolationRejected(t *testing.T) {
	c := twoNodeCluster()
	_, err := Run(c, []*job.Job{simpleJob(0, 2, 100, 0)}, badGang{}, ValidatedOptions())
	if err == nil || !strings.Contains(err.Error(), "gang") {
		t.Errorf("gang violation not rejected: %v", err)
	}
}

func TestOverbookingRejected(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 4})
	jobs := []*job.Job{simpleJob(0, 3, 100, 0), simpleJob(1, 3, 100, 0)}
	_, err := Run(c, jobs, overbook{}, ValidatedOptions())
	if err == nil || !strings.Contains(err.Error(), "over-allocated") {
		t.Errorf("overbooking not rejected: %v", err)
	}
}

func TestGhostAllocationRejected(t *testing.T) {
	c := twoNodeCluster()
	_, err := Run(c, []*job.Job{simpleJob(0, 1, 100, 0)}, ghost{}, ValidatedOptions())
	if err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("ghost allocation not rejected: %v", err)
	}
}

func TestStarvationDetected(t *testing.T) {
	c := twoNodeCluster()
	opts := ValidatedOptions()
	opts.StallLimit = 10
	_, err := Run(c, []*job.Job{simpleJob(0, 1, 100, 0)}, idle{}, opts)
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Errorf("starvation not detected: %v", err)
	}
}

func TestImpossibleJobRejectedUpfront(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2})
	_, err := Run(c, []*job.Job{simpleJob(0, 3, 100, 0)}, fifo{}, ValidatedOptions())
	if err == nil || !strings.Contains(err.Error(), "never be placed") {
		t.Errorf("oversized job accepted: %v", err)
	}
}

func TestUnusableTypeCountsExcluded(t *testing.T) {
	// Job can only use V100 but the cluster is K80-rich: unplaceable.
	c := cluster.New(gpu.Fleet{gpu.V100: 1, gpu.K80: 8})
	j := simpleJob(0, 2, 100, 0)
	j.Throughput = map[gpu.Type]float64{gpu.V100: 10}
	_, err := Run(c, []*job.Job{j}, fifo{}, ValidatedOptions())
	if err == nil {
		t.Error("job unplaceable on usable types accepted")
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	if _, err := Run(twoNodeCluster(), nil, fifo{}, ValidatedOptions()); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestBadOptionsRejected(t *testing.T) {
	c := twoNodeCluster()
	jobs := []*job.Job{simpleJob(0, 1, 100, 0)}
	opts := ValidatedOptions()
	opts.RoundLength = 0
	if _, err := Run(c, jobs, fifo{}, opts); err == nil {
		t.Error("zero round length accepted")
	}
	opts = ValidatedOptions()
	opts.FlatDelay = 400
	if _, err := Run(c, jobs, fifo{}, opts); err == nil {
		t.Error("delay longer than round accepted")
	}
}

func TestDeterminism(t *testing.T) {
	c := twoNodeCluster()
	mkJobs := func() []*job.Job {
		return []*job.Job{
			simpleJob(0, 2, 5000, 0),
			simpleJob(1, 4, 9000, 50),
			simpleJob(2, 1, 3000, 400),
		}
	}
	a, err := Run(c, mkJobs(), fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(c, mkJobs(), fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i].Finish != b.Jobs[i].Finish {
			t.Fatalf("run not deterministic: job %d finish %v vs %v",
				a.Jobs[i].ID, a.Jobs[i].Finish, b.Jobs[i].Finish)
		}
	}
}

func TestRunDoesNotMutateInputOrder(t *testing.T) {
	c := twoNodeCluster()
	jobs := []*job.Job{
		simpleJob(5, 1, 100, 500),
		simpleJob(3, 1, 100, 0),
	}
	if _, err := Run(c, jobs, fifo{}, ValidatedOptions()); err != nil {
		t.Fatal(err)
	}
	if jobs[0].ID != 5 || jobs[1].ID != 3 {
		t.Error("Run reordered the caller's trace slice")
	}
}

func TestStragglerSlowsJob(t *testing.T) {
	cFast := cluster.New(gpu.Fleet{gpu.V100: 2})
	cSlow := cluster.New(gpu.Fleet{gpu.V100: 2})
	cSlow.SetSpeed(0, 0.5)
	mk := func() *job.Job { return simpleJob(0, 2, 4000, 0) }
	rf, err := Run(cFast, []*job.Job{mk()}, fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(cSlow, []*job.Job{mk()}, fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rs.Jobs[0].JCT() <= rf.Jobs[0].JCT() {
		t.Errorf("straggler JCT %v not worse than nominal %v",
			rs.Jobs[0].JCT(), rf.Jobs[0].JCT())
	}
}

func TestDecisionAccounting(t *testing.T) {
	c := twoNodeCluster()
	r, err := Run(c, []*job.Job{simpleJob(0, 1, 5000, 0)}, fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Decisions != r.Rounds || r.Decisions == 0 {
		t.Errorf("Decisions = %d, Rounds = %d", r.Decisions, r.Rounds)
	}
}

// multiChurn reallocates two jobs between nodes every round, always
// leaving both on node 0 or both on node 1, so their checkpoints contend
// on the same SSD when contention modeling is enabled.
type multiChurn struct{}

func (multiChurn) Name() string { return "test-multichurn" }
func (multiChurn) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	out := make(map[int]cluster.Alloc)
	node := ctx.Round % 2
	for _, st := range ctx.Jobs {
		out[st.Job.ID] = cluster.Alloc{{Node: node, Type: gpu.V100, Count: st.Job.Workers}}
	}
	return out
}

func TestCheckpointContentionSlowsColocatedRestarts(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 4}, gpu.Fleet{gpu.V100: 4})
	mkJobs := func() []*job.Job {
		return []*job.Job{simpleJob(0, 2, 20000, 0), simpleJob(1, 2, 20000, 0)}
	}
	base := ValidatedOptions()
	withContention := ValidatedOptions()
	withContention.CheckpointContention = true
	r1, err := Run(c, mkJobs(), multiChurn{}, base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c, mkJobs(), multiChurn{}, withContention)
	if err != nil {
		t.Fatal(err)
	}
	if !(r2.AvgJCT() > r1.AvgJCT()) {
		t.Errorf("contention did not slow colocated churn: %v vs %v", r2.AvgJCT(), r1.AvgJCT())
	}
}

func TestCheckpointContentionNoEffectWithoutRealloc(t *testing.T) {
	c := twoNodeCluster()
	mk := func() *job.Job { return simpleJob(0, 2, 20000, 0) }
	base := ValidatedOptions()
	withContention := ValidatedOptions()
	withContention.CheckpointContention = true
	r1, err := Run(c, []*job.Job{mk()}, fifo{}, base)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(c, []*job.Job{mk()}, fifo{}, withContention)
	if err != nil {
		t.Fatal(err)
	}
	if r1.AvgJCT() != r2.AvgJCT() {
		t.Errorf("contention changed a sticky run: %v vs %v", r1.AvgJCT(), r2.AvgJCT())
	}
}

func TestFailureHidesNodeFromScheduler(t *testing.T) {
	// Node 0 (the only V100-rich node) is down for rounds 1-2; the
	// sticky FIFO scheduler must move the job to node 1 and the job
	// still completes.
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.V100: 2})
	j := simpleJob(0, 2, 20000, 0) // ~1000s of work
	opts := ValidatedOptions()
	opts.Failures = []Failure{{Node: 0, Start: 360, End: 1080}}
	r, err := Run(c, []*job.Job{j}, fifo{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Jobs) != 1 {
		t.Fatal("job did not complete despite a spare node")
	}
	// The forced migration costs at least one reallocation.
	if r.JobRoundReallocs == 0 {
		t.Error("failure did not force a reallocation")
	}
}

func TestSurpriseFailureLosesRoundProgress(t *testing.T) {
	// The outage begins mid-round 0 (t=100): the scheduler could not
	// see it at t=0, so round 0's work is lost; with only one node the
	// job waits out the outage and finishes late.
	c := cluster.New(gpu.Fleet{gpu.V100: 2})
	mk := func() *job.Job { return simpleJob(0, 2, 1000, 0) } // 50s work
	clean := ValidatedOptions()
	rClean, err := Run(c, []*job.Job{mk()}, fifo{}, clean)
	if err != nil {
		t.Fatal(err)
	}
	faulty := ValidatedOptions()
	faulty.Failures = []Failure{{Node: 0, Start: 100, End: 700}}
	rFaulty, err := Run(c, []*job.Job{mk()}, fifo{}, faulty)
	if err != nil {
		t.Fatal(err)
	}
	if rFaulty.Jobs[0].JCT() <= rClean.Jobs[0].JCT() {
		t.Errorf("failure did not delay the job: %v vs %v",
			rFaulty.Jobs[0].JCT(), rClean.Jobs[0].JCT())
	}
	// The job must restart after the node recovers: finish after 720s.
	if rFaulty.Jobs[0].Finish < 720 {
		t.Errorf("finish %v before recovery", rFaulty.Jobs[0].Finish)
	}
}

// capacityProbe wraps fifo and records node 0's V100 capacity as the
// scheduler saw it each round.
type capacityProbe struct {
	inner fifo
	caps  *[]int
}

func (p capacityProbe) Name() string { return "test-capacity-probe" }
func (p capacityProbe) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	*p.caps = append(*p.caps, ctx.Cluster.Capacity(0, gpu.V100))
	return p.inner.Schedule(ctx)
}

func TestFailureExcludedFromSchedulerView(t *testing.T) {
	// Node 0 is down for rounds 1-2 ([360, 1080)): the scheduler must
	// see it with zero capacity exactly for those rounds and full
	// capacity again once the outage ends.
	c := cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.V100: 2})
	var caps []int
	opts := ValidatedOptions()
	opts.Failures = []Failure{{Node: 0, Start: 360, End: 1080}}
	if _, err := Run(c, []*job.Job{simpleJob(0, 2, 40000, 0)}, capacityProbe{caps: &caps}, opts); err != nil {
		t.Fatal(err)
	}
	if len(caps) < 4 {
		t.Fatalf("only %d rounds ran", len(caps))
	}
	want := []int{2, 0, 0, 2}
	for i, w := range want {
		if caps[i] != w {
			t.Errorf("round %d: scheduler saw capacity %d on node 0, want %d", i, caps[i], w)
		}
	}
}

func TestFailureFaultCountersAccounted(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2})
	clean, err := Run(c, []*job.Job{simpleJob(0, 2, 1000, 0)}, fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if clean.Faults.Any() {
		t.Errorf("fault counters nonzero without failures: %+v", clean.Faults)
	}

	// The outage begins mid-round 0 (invisible to the scheduler at
	// t=0), so the job's entire 1000 iterations were in flight and are
	// lost; the node is seen down for round 1 and up again at t=720.
	opts := ValidatedOptions()
	opts.Failures = []Failure{{Node: 0, Start: 100, End: 700}}
	r, err := Run(c, []*job.Job{simpleJob(0, 2, 1000, 0)}, fifo{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	f := r.Faults
	if f.NodeDown != 1 || f.NodeUp != 1 {
		t.Errorf("node transitions = %d down / %d up, want 1/1", f.NodeDown, f.NodeUp)
	}
	if f.Recoveries != 1 {
		t.Errorf("recoveries = %d, want 1 (one killed round)", f.Recoveries)
	}
	if f.LostIterations != 1000 {
		t.Errorf("lost iterations = %v, want 1000 (full remaining work)", f.LostIterations)
	}
}

func TestFailureWindowValidation(t *testing.T) {
	c := twoNodeCluster()
	opts := ValidatedOptions()
	opts.Failures = []Failure{{Node: 0, Start: 100, End: 100}}
	if _, err := Run(c, []*job.Job{simpleJob(0, 1, 100, 0)}, fifo{}, opts); err == nil {
		t.Error("empty failure window accepted")
	}
}

func TestFailureOfWholeClusterStalls(t *testing.T) {
	c := cluster.New(gpu.Fleet{gpu.V100: 2})
	opts := ValidatedOptions()
	opts.StallLimit = 5
	opts.Failures = []Failure{{Node: 0, Start: 0, End: 1e9}}
	_, err := Run(c, []*job.Job{simpleJob(0, 1, 100, 0)}, fifo{}, opts)
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Errorf("permanent outage not detected as stall: %v", err)
	}
}

func TestEventLogRecordsLifecycle(t *testing.T) {
	c := twoNodeCluster()
	jobs := []*job.Job{
		simpleJob(0, 2, 20000, 0), // ~1000s: spans the outage window
		simpleJob(1, 2, 5000, 400),
	}
	var buf bytes.Buffer
	opts := ValidatedOptions()
	opts.EventLog = &buf
	opts.Failures = []Failure{{Node: 1, Start: 360, End: 720}}
	if _, err := Run(c, jobs, fifo{}, opts); err != nil {
		t.Fatal(err)
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[EventType]int{}
	for _, e := range events {
		counts[e.Type]++
	}
	if counts[EventArrive] != 2 {
		t.Errorf("arrive events = %d, want 2", counts[EventArrive])
	}
	if counts[EventStart] != 2 {
		t.Errorf("start events = %d, want 2", counts[EventStart])
	}
	if counts[EventFinish] != 2 {
		t.Errorf("finish events = %d, want 2", counts[EventFinish])
	}
	if counts[EventNodeDown] != 1 || counts[EventNodeUp] != 1 {
		t.Errorf("node events = %d down / %d up, want 1/1",
			counts[EventNodeDown], counts[EventNodeUp])
	}
	// Events are time-ordered per type sequence: every job's arrive
	// precedes its start precedes its finish.
	seen := map[int]EventType{}
	for _, e := range events {
		if e.Job < 0 {
			continue
		}
		switch e.Type {
		case EventStart:
			if seen[e.Job] != EventArrive {
				t.Errorf("job %d started before arriving", e.Job)
			}
		case EventFinish:
			if seen[e.Job] != EventStart && seen[e.Job] != EventRealloc {
				t.Errorf("job %d finished from state %v", e.Job, seen[e.Job])
			}
		}
		seen[e.Job] = e.Type
	}
}

func TestReadEventsRejectsGarbage(t *testing.T) {
	if _, err := ReadEvents(strings.NewReader("{not json}\n")); err == nil {
		t.Error("garbage event log accepted")
	}
	events, err := ReadEvents(strings.NewReader(""))
	if err != nil || len(events) != 0 {
		t.Errorf("empty log: %v %v", events, err)
	}
}
