package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/job"
)

// buildMidRunEngine submits a staggered workload and steps the engine
// into the middle of it: some jobs finished, some active, some still
// queued, one cancel pending.
func buildMidRunEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(twoNodeCluster(), fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	jobs := []*job.Job{
		simpleJob(0, 2, 800, 0),     // finishes early
		simpleJob(1, 4, 200000, 0),  // long-running
		simpleJob(2, 1, 50000, 100), // long-running
		simpleJob(3, 2, 4000, 2000), // still queued at checkpoint time
		simpleJob(4, 1, 3000, 2500), // still queued at checkpoint time
	}
	for _, j := range jobs {
		if err := e.SubmitJob(j); err != nil {
			t.Fatal(err)
		}
	}
	for e.Round() < 4 {
		ok, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatal("engine drained before reaching round 4")
		}
	}
	if err := e.CancelJob(2); err != nil {
		t.Fatal(err)
	}
	return e
}

// TestPersistRoundTrip checkpoints an engine mid-run, restores it with
// a fresh scheduler instance, applies an identical tail of operations
// to both, and requires byte-identical outcomes: same chained digest,
// same per-job results, same clock.
func TestPersistRoundTrip(t *testing.T) {
	orig := buildMidRunEngine(t)
	data, err := orig.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	restored, err := RestoreEngine(twoNodeCluster(), fifo{}, ValidatedOptions(), data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Now() != orig.Now() {
		t.Fatalf("restored clock %v, want %v", restored.Now(), orig.Now())
	}
	if restored.Round() != orig.Round() {
		t.Fatalf("restored round %d, want %d", restored.Round(), orig.Round())
	}
	if restored.Digest() != orig.Digest() {
		t.Fatalf("restored digest %#x, want %#x", restored.Digest(), orig.Digest())
	}

	// Same operation tail on both engines: one late submission, one
	// cancellation, then run to completion.
	for _, e := range []*Engine{orig, restored} {
		if err := e.SubmitJob(simpleJob(7, 2, 2000, 5000)); err != nil {
			t.Fatal(err)
		}
		if err := e.CancelJob(3); err != nil {
			t.Fatal(err)
		}
	}
	wantReport := driveEngine(t, orig)
	gotReport := driveEngine(t, restored)

	if orig.Digest() != restored.Digest() {
		t.Errorf("final digest diverged: original %#x, restored %#x", orig.Digest(), restored.Digest())
	}
	if len(gotReport.Jobs) != len(wantReport.Jobs) {
		t.Fatalf("restored run completed %d jobs, original %d", len(gotReport.Jobs), len(wantReport.Jobs))
	}
	for i := range wantReport.Jobs {
		if gotReport.Jobs[i] != wantReport.Jobs[i] {
			t.Errorf("job %d result differs:\nrestored: %+v\noriginal: %+v", i, gotReport.Jobs[i], wantReport.Jobs[i])
		}
	}
	if gotReport.Makespan != wantReport.Makespan {
		t.Errorf("Makespan = %v, want %v", gotReport.Makespan, wantReport.Makespan)
	}
	if gotReport.Rounds != wantReport.Rounds {
		t.Errorf("Rounds = %d, want %d", gotReport.Rounds, wantReport.Rounds)
	}
	if got, want := restored.Snapshot().Cancelled, orig.Snapshot().Cancelled; got != want {
		t.Errorf("Cancelled = %d, want %d", got, want)
	}
}

// TestPersistFreshEngine round-trips an engine that has not executed a
// single round: everything still queued.
func TestPersistFreshEngine(t *testing.T) {
	orig, err := NewEngine(twoNodeCluster(), fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := orig.SubmitJob(simpleJob(i, 1, 500, float64(i)*50)); err != nil {
			t.Fatal(err)
		}
	}
	data, err := orig.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreEngine(twoNodeCluster(), fifo{}, ValidatedOptions(), data)
	if err != nil {
		t.Fatal(err)
	}
	want := driveEngine(t, orig)
	got := driveEngine(t, restored)
	if orig.Digest() != restored.Digest() {
		t.Errorf("digest diverged: %#x vs %#x", orig.Digest(), restored.Digest())
	}
	if len(got.Jobs) != len(want.Jobs) {
		t.Fatalf("restored completed %d jobs, original %d", len(got.Jobs), len(want.Jobs))
	}
	for i := range want.Jobs {
		if got.Jobs[i] != want.Jobs[i] {
			t.Errorf("job %d result differs", i)
		}
	}
}

// TestRestoreRejections exercises every validation gate in
// RestoreEngine: a checkpoint must only resume under the exact
// conditions it was taken.
func TestRestoreRejections(t *testing.T) {
	e := buildMidRunEngine(t)
	data, err := e.MarshalState()
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(t *testing.T, fn func(m map[string]interface{})) []byte {
		t.Helper()
		var m map[string]interface{}
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatal(err)
		}
		fn(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	smallCluster := cluster.New(gpu.Fleet{gpu.V100: 1})
	otherOpts := ValidatedOptions()
	otherOpts.RoundLength *= 2

	cases := []struct {
		name    string
		data    []byte
		cluster *cluster.Cluster
		sched   interface {
			Name() string
		}
		opts    Options
		wantSub string
	}{
		{"corrupt json", []byte(`{"version": 1, "sched`), nil, nil, Options{}, "restore"},
		{"wrong version", mutate(t, func(m map[string]interface{}) { m["version"] = 99 }), nil, nil, Options{}, "version"},
		{"wrong scheduler", data, nil, churn{}, Options{}, "scheduler"},
		{"changed options", data, nil, nil, otherOpts, "options changed"},
		{"phase misalignment", mutate(t, func(m map[string]interface{}) { m["phases"] = []interface{}{} }), nil, nil, Options{}, "phases"},
		{"cluster mismatch", data, smallCluster, nil, Options{}, "GPUs"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			c := tc.cluster
			if c == nil {
				c = twoNodeCluster()
			}
			opts := tc.opts
			if opts.RoundLength == 0 {
				opts = ValidatedOptions()
			}
			s := fifo{}
			if tc.sched != nil {
				_, err = RestoreEngine(c, churn{}, opts, tc.data)
			} else {
				_, err = RestoreEngine(c, s, opts, tc.data)
			}
			if err == nil {
				t.Fatal("RestoreEngine accepted an invalid checkpoint")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

// TestRestoreDuplicateJobID guards the integrity check on the job list.
func TestRestoreDuplicateJobID(t *testing.T) {
	e, err := NewEngine(twoNodeCluster(), fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitJob(simpleJob(5, 1, 100, 0)); err != nil {
		t.Fatal(err)
	}
	data, err := e.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	jobs := m["jobs"].([]interface{})
	m["jobs"] = append(jobs, jobs[0])
	m["phases"] = append(m["phases"].([]interface{}), m["phases"].([]interface{})[0])
	bad, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreEngine(twoNodeCluster(), fifo{}, ValidatedOptions(), bad); err == nil {
		t.Fatal("RestoreEngine accepted a duplicate job ID")
	}
}
