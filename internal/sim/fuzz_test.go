package sim

import (
	"testing"

	"repro/internal/allox"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gavel"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
	"repro/internal/tiresias"
	"repro/internal/yarncs"
)

// FuzzSimRun drives the full simulator + scheduler + invariant-oracle
// stack with generated-but-valid workloads: every fuzz input is decoded
// into a placeable job set, a policy, and (optionally) failure windows,
// so any error out of Run is a real bug — either a policy violated the
// round protocol or the simulator broke one of the paper's invariants.
// The oracle is always on, turning silent accounting drift into a
// crashing input the fuzzer can minimize.
func FuzzSimRun(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint64(3), false)
	f.Add(uint64(0), uint64(0), uint64(0), true)
	f.Add(uint64(12345), uint64(999), uint64(42), true)
	f.Add(uint64(1<<40), uint64(7), uint64(1<<20), false)

	f.Fuzz(func(t *testing.T, jobBits, policyBits, faultBits uint64, modelCosts bool) {
		// Small fixed heterogeneous cluster: 3 nodes, 7 devices. Every
		// job gets positive throughput on all three types, so the
		// per-type pool floor is min(3, 2, 2) = 2 workers.
		c := cluster.New(gpu.Fleet{gpu.V100: 3}, gpu.Fleet{gpu.P100: 2}, gpu.Fleet{gpu.K80: 2})
		const maxWorkers = 2

		// Decode up to 4 jobs from jobBits, consuming a few bits per
		// field. All derived values are clamped into valid ranges.
		take := func(bits *uint64, n uint) uint64 {
			v := *bits & ((1 << n) - 1)
			*bits >>= n
			return v
		}
		numJobs := int(take(&jobBits, 2)) + 1
		jobs := make([]*job.Job, numJobs)
		for i := range jobs {
			workers := int(take(&jobBits, 1)) + 1 // 1..2 <= pool floor
			if workers > maxWorkers {
				workers = maxWorkers
			}
			iters := int(take(&jobBits, 10)) + 1 // 1..1024 iterations
			v := 1 + float64(take(&jobBits, 3))  // 1..8 it/s
			p := 0.5 + float64(take(&jobBits, 2))
			k := 0.25 + float64(take(&jobBits, 1))
			arrival := float64(take(&jobBits, 3)) * 360
			jobs[i] = &job.Job{
				ID: i, Model: "fuzz", Workers: workers, Arrival: arrival,
				Epochs: iters, ItersPerEpoch: 1,
				Throughput: map[gpu.Type]float64{gpu.V100: v, gpu.P100: p, gpu.K80: k},
			}
		}

		var s sched.Scheduler
		switch policyBits % 5 {
		case 0:
			s = core.New(core.DefaultOptions())
		case 1:
			s = gavel.New(gavel.Options{})
		case 2:
			s = tiresias.New(tiresias.DefaultOptions())
		case 3:
			s = yarncs.New()
		default:
			s = allox.New()
		}

		opts := ValidatedOptions()
		opts.MaxRounds = 5000
		opts.UseModelCosts = modelCosts
		if faultBits&1 != 0 {
			node := int(faultBits>>1) % c.NumNodes()
			start := float64((faultBits>>3)%8) * 360
			length := float64((faultBits>>6)%4+1) * 360
			opts.Failures = []Failure{{Node: node, Start: start, End: start + length}}
		}

		rep, err := Run(c, jobs, s, opts)
		if err != nil {
			t.Fatalf("valid workload failed: %v", err)
		}
		if len(rep.Jobs) != len(jobs) {
			t.Fatalf("%d of %d jobs completed", len(rep.Jobs), len(jobs))
		}
	})
}
