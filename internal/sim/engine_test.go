package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/metrics"
)

// driveEngine steps the engine to completion and finalizes the report.
func driveEngine(t *testing.T, e *Engine) *metrics.Report {
	t.Helper()
	for {
		ok, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	r, err := e.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestEngineMatchesRun(t *testing.T) {
	jobs := []*job.Job{
		simpleJob(0, 2, 20000, 0),
		simpleJob(1, 4, 5000, 100),
		simpleJob(2, 1, 800, 1200),
	}
	want, err := Run(twoNodeCluster(), jobs, fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}

	e, err := NewEngine(twoNodeCluster(), fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := e.SubmitJob(j); err != nil {
			t.Fatal(err)
		}
	}
	got := driveEngine(t, e)

	if len(got.Jobs) != len(want.Jobs) {
		t.Fatalf("engine completed %d jobs, Run %d", len(got.Jobs), len(want.Jobs))
	}
	for i := range got.Jobs {
		if got.Jobs[i] != want.Jobs[i] {
			t.Errorf("job %d result differs:\nengine: %+v\nrun:    %+v", i, got.Jobs[i], want.Jobs[i])
		}
	}
	if got.Makespan != want.Makespan || got.Rounds != want.Rounds ||
		got.BusyGPUSeconds != want.BusyGPUSeconds || got.HeldGPUSeconds != want.HeldGPUSeconds {
		t.Errorf("aggregates differ: engine {mk %v rounds %d busy %v held %v}, run {mk %v rounds %d busy %v held %v}",
			got.Makespan, got.Rounds, got.BusyGPUSeconds, got.HeldGPUSeconds,
			want.Makespan, want.Rounds, want.BusyGPUSeconds, want.HeldGPUSeconds)
	}
}

// TestEngineOnlineSubmission submits a second job only after the first
// has started running — the online-arrival path batch Run can't take.
func TestEngineOnlineSubmission(t *testing.T) {
	e, err := NewEngine(twoNodeCluster(), fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitJob(simpleJob(0, 2, 20000, 0)); err != nil {
		t.Fatal(err)
	}
	// One round: job 0 is running, engine idles at the next boundary.
	if err := e.ProcessNextEvent(); err != nil {
		t.Fatal(err)
	}
	if got := e.Now(); got != 360 {
		t.Fatalf("after one round Now = %v, want 360", got)
	}
	// Late submission with Arrival in the past clamps to now.
	late := simpleJob(1, 1, 100, 0)
	if err := e.SubmitJob(late); err != nil {
		t.Fatal(err)
	}
	if p, ok := e.Phase(1); !ok || p != JobPending {
		t.Fatalf("phase of late job = %v, %v; want pending", p, ok)
	}
	r := driveEngine(t, e)
	if len(r.Jobs) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(r.Jobs))
	}
	// The late job was admitted at the boundary after its submission
	// time (t=360), so it cannot have started before that.
	for _, jr := range r.Jobs {
		if jr.ID == 1 && jr.Start < 360 {
			t.Errorf("late job started at %v, before its submission time 360", jr.Start)
		}
	}
	if p, ok := e.Phase(1); !ok || p != JobFinished {
		t.Errorf("phase of late job = %v, %v; want finished", p, ok)
	}
}

func TestEngineCancelPendingAndActive(t *testing.T) {
	var buf bytes.Buffer
	opts := ValidatedOptions()
	opts.EventLog = &buf
	e, err := NewEngine(twoNodeCluster(), fifo{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	running := simpleJob(0, 2, 20000, 0)
	pending := simpleJob(1, 1, 1000, 10*3600) // arrives hours later
	if err := e.SubmitJob(running); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitJob(pending); err != nil {
		t.Fatal(err)
	}
	if err := e.ProcessNextEvent(); err != nil { // job 0 starts
		t.Fatal(err)
	}
	// Cancel the running job and the not-yet-arrived job.
	if err := e.CancelJob(0); err != nil {
		t.Fatal(err)
	}
	if err := e.CancelJob(1); err != nil {
		t.Fatal(err)
	}
	// Double cancel is rejected while the first is still queued.
	if err := e.CancelJob(0); err == nil || !strings.Contains(err.Error(), "already cancelled") {
		t.Fatalf("double cancel error = %v", err)
	}
	r := driveEngine(t, e)
	if len(r.Jobs) != 0 {
		t.Fatalf("%d jobs completed, want 0 (both cancelled)", len(r.Jobs))
	}
	for id := 0; id <= 1; id++ {
		if p, _ := e.Phase(id); p != JobCancelled {
			t.Errorf("phase of job %d = %v, want cancelled", id, p)
		}
	}
	events, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	cancels := 0
	for _, ev := range events {
		if ev.Type == EventCancel {
			cancels++
		}
	}
	if cancels != 2 {
		t.Errorf("%d cancel events, want 2", cancels)
	}
	// After both cancellations the engine is idle but not poisoned.
	if e.HasPendingEvents() {
		t.Error("engine still has pending events after cancelling everything")
	}
	if err := e.Err(); err != nil {
		t.Errorf("engine error = %v", err)
	}
}

func TestEngineCancelErrors(t *testing.T) {
	e, err := NewEngine(twoNodeCluster(), fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.CancelJob(7); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Fatalf("cancel of unknown job error = %v", err)
	}
	if err := e.SubmitJob(simpleJob(0, 1, 100, 0)); err != nil {
		t.Fatal(err)
	}
	driveEngine(t, e)
	if err := e.CancelJob(0); err == nil || !strings.Contains(err.Error(), "finished job") {
		t.Fatalf("cancel of finished job error = %v", err)
	}
}

func TestEngineSubmitErrors(t *testing.T) {
	e, err := NewEngine(twoNodeCluster(), fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitJob(&job.Job{ID: 0}); err == nil {
		t.Error("invalid job accepted")
	}
	if err := e.SubmitJob(simpleJob(1, 64, 100, 0)); err == nil ||
		!strings.Contains(err.Error(), "can never be placed") {
		t.Errorf("unplaceable job error = %v", err)
	}
	if err := e.SubmitJob(simpleJob(2, 1, 100, 0)); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitJob(simpleJob(2, 1, 100, 0)); err == nil ||
		!strings.Contains(err.Error(), "duplicate job ID") {
		t.Errorf("duplicate submission error = %v", err)
	}
}

func TestEnginePeekNextEventTime(t *testing.T) {
	e, err := NewEngine(twoNodeCluster(), fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.PeekNextEventTime(); ok {
		t.Error("empty engine reports a next event")
	}
	if e.HasPendingEvents() {
		t.Error("empty engine has pending events")
	}
	// A job arriving at t=500 is admitted at the boundary after it:
	// ceil(500/360)*360 = 720. 20000 iterations at 10 it/s outlast a
	// round, so the job is still active after the first one.
	if err := e.SubmitJob(simpleJob(0, 1, 20000, 500)); err != nil {
		t.Fatal(err)
	}
	if tm, ok := e.PeekNextEventTime(); !ok || tm != 720 {
		t.Fatalf("peek = %v, %v; want 720", tm, ok)
	}
	if err := e.ProcessNextEvent(); err != nil { // fast-forward to 720
		t.Fatal(err)
	}
	if e.Now() != 720 {
		t.Fatalf("Now = %v after fast-forward, want 720", e.Now())
	}
	// Active work processes at the current boundary.
	if err := e.ProcessNextEvent(); err != nil {
		t.Fatal(err)
	}
	if tm, ok := e.PeekNextEventTime(); !ok || tm != e.Now() {
		t.Fatalf("peek with active job = %v, %v; want now=%v", tm, ok, e.Now())
	}
	driveEngine(t, e)
}

func TestEngineStickyError(t *testing.T) {
	opts := ValidatedOptions()
	opts.MaxRounds = 1
	e, err := NewEngine(twoNodeCluster(), fifo{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitJob(simpleJob(0, 2, 1e9, 0)); err != nil {
		t.Fatal(err)
	}
	var stepErr error
	for i := 0; i < 10 && stepErr == nil; i++ {
		stepErr = e.ProcessNextEvent()
	}
	if stepErr == nil || !strings.Contains(stepErr.Error(), "exceeded 1 rounds") {
		t.Fatalf("max-rounds error = %v", stepErr)
	}
	// Every later operation reports the same sticky error.
	if err := e.ProcessNextEvent(); err != stepErr {
		t.Errorf("ProcessNextEvent after failure = %v, want sticky %v", err, stepErr)
	}
	if err := e.SubmitJob(simpleJob(1, 1, 1, 0)); err != stepErr {
		t.Errorf("SubmitJob after failure = %v, want sticky %v", err, stepErr)
	}
	if _, err := e.Finish(); err != stepErr {
		t.Errorf("Finish after failure = %v, want sticky %v", err, stepErr)
	}
	if e.HasPendingEvents() {
		t.Error("poisoned engine claims pending events")
	}
}

// TestEngineCancelFreesCapacity verifies a cancelled running job's
// devices are schedulable again at the next boundary: a second job that
// cannot fit alongside the first starts only after the cancellation.
func TestEngineCancelFreesCapacity(t *testing.T) {
	e, err := NewEngine(twoNodeCluster(), fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The cluster has 8 V100 + 2 K80; the hog takes everything usable.
	hog := simpleJob(0, 10, 1e8, 0)
	blocked := simpleJob(1, 10, 100, 0)
	if err := e.SubmitJob(hog); err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitJob(blocked); err != nil {
		t.Fatal(err)
	}
	if err := e.ProcessNextEvent(); err != nil {
		t.Fatal(err)
	}
	if p, _ := e.Phase(1); p != JobActive {
		t.Fatalf("blocked job phase = %v, want active", p)
	}
	if err := e.CancelJob(0); err != nil {
		t.Fatal(err)
	}
	r := driveEngine(t, e)
	if len(r.Jobs) != 1 || r.Jobs[0].ID != 1 {
		t.Fatalf("results = %+v, want only job 1", r.Jobs)
	}
	if r.Jobs[0].Start < 360 {
		t.Errorf("blocked job started at %v while the hog held the cluster", r.Jobs[0].Start)
	}
}

// TestEngineIdleThenResubmit exercises the long-lived service pattern:
// the engine drains completely, then picks up fresh work.
func TestEngineIdleThenResubmit(t *testing.T) {
	e, err := NewEngine(twoNodeCluster(), fifo{}, ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SubmitJob(simpleJob(0, 1, 100, 0)); err != nil {
		t.Fatal(err)
	}
	driveEngine(t, e)
	idleAt := e.Now()
	if e.HasPendingEvents() {
		t.Fatal("drained engine has pending events")
	}
	if err := e.SubmitJob(simpleJob(1, 1, 100, 0)); err != nil {
		t.Fatal(err)
	}
	if !e.HasPendingEvents() {
		t.Fatal("resubmission did not re-arm the engine")
	}
	r := driveEngine(t, e)
	if len(r.Jobs) != 2 {
		t.Fatalf("completed %d jobs, want 2", len(r.Jobs))
	}
	if e.Now() <= idleAt {
		t.Errorf("clock did not advance past idle point: %v <= %v", e.Now(), idleAt)
	}
	if math.IsNaN(r.Makespan) {
		t.Error("NaN makespan")
	}
}
