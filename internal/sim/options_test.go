package sim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/sched"
)

func TestNormalizeRejectsBadOptions(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		want string // substring of the error
	}{
		{"zero round", Options{RoundLength: 0}, "round length"},
		{"negative round", Options{RoundLength: -360}, "round length"},
		{"negative delay", Options{RoundLength: 360, FlatDelay: -1}, "flat delay"},
		{"delay equals round", Options{RoundLength: 360, FlatDelay: 360}, "flat delay"},
		{"delay exceeds round", Options{RoundLength: 360, FlatDelay: 400}, "flat delay"},
		{"empty failure window", Options{RoundLength: 360,
			Failures: []Failure{{Node: 0, Start: 100, End: 100}}}, "failure window"},
		{"inverted failure window", Options{RoundLength: 360,
			Failures: []Failure{{Node: 1, Start: 200, End: 100}}}, "failure window"},
		{"negative failure start", Options{RoundLength: 360,
			Failures: []Failure{{Node: 0, Start: -1, End: 100}}}, "failure window"},
	}
	for _, tc := range cases {
		opts := tc.opts
		err := opts.normalize()
		if err == nil {
			t.Errorf("%s: normalize accepted %+v", tc.name, tc.opts)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestNormalizeAppliesDefaults(t *testing.T) {
	opts := Options{RoundLength: 360}
	if err := opts.normalize(); err != nil {
		t.Fatal(err)
	}
	if opts.MaxRounds != 2_000_000 {
		t.Errorf("MaxRounds default = %d, want 2000000", opts.MaxRounds)
	}
	if opts.StallLimit != 5000 {
		t.Errorf("StallLimit default = %d, want 5000", opts.StallLimit)
	}

	// Explicit settings survive normalization untouched.
	opts = Options{RoundLength: 100, FlatDelay: 99, MaxRounds: 7, StallLimit: 3}
	if err := opts.normalize(); err != nil {
		t.Fatal(err)
	}
	if opts.MaxRounds != 7 || opts.StallLimit != 3 || opts.FlatDelay != 99 {
		t.Errorf("normalize clobbered explicit options: %+v", opts)
	}
}

func TestStallFor(t *testing.T) {
	flat := Options{RoundLength: 360, FlatDelay: 10}
	if got := stallFor("ResNet-50", true, flat); got != 10 {
		t.Errorf("flat changed stall = %v, want 10", got)
	}
	if got := stallFor("ResNet-50", false, flat); got != 0 {
		t.Errorf("flat unchanged stall = %v, want 0", got)
	}

	// Model-cost mode delegates to the Table III save/restore profile:
	// save+restore on reallocation, periodic save otherwise — and falls
	// back to the flat restore for models outside the table.
	model := Options{RoundLength: 360, FlatDelay: 10, UseModelCosts: true}
	if got, want := stallFor("ResNet-50", true, model), checkpoint.Delay("ResNet-50", true); got != want {
		t.Errorf("model changed stall = %v, want %v", got, want)
	}
	if got, want := stallFor("ResNet-50", false, model), checkpoint.Delay("ResNet-50", false); got != want {
		t.Errorf("model unchanged stall = %v, want %v", got, want)
	}
	if got := stallFor("no-such-model", true, model); got != checkpoint.DefaultDelay {
		t.Errorf("unknown-model stall = %v, want the flat fallback %v", got, checkpoint.DefaultDelay)
	}
	if got := stallFor("no-such-model", false, model); got != 0 {
		t.Errorf("unknown-model save-only stall = %v, want 0", got)
	}
}

func TestHorizonEdgeCases(t *testing.T) {
	const round = 360.0

	// No active jobs: the horizon is exactly one round ahead.
	if got := horizon(1000, nil, round); got != 1000+round {
		t.Errorf("idle horizon = %v, want %v", got, 1000+round)
	}

	// A fresh job contributes its full worst-case serial runtime; a
	// half-done job contributes half of it.
	j := simpleJob(0, 2, 1000, 0) // worst type K80 at 2 it/s x 2 workers
	full := &sched.JobState{Job: j, Remaining: j.TotalIters()}
	half := &sched.JobState{Job: j, Remaining: j.TotalIters() / 2}
	max := j.MaxDuration()
	if got, want := horizon(0, []*sched.JobState{full}, round), round+max; math.Abs(got-want) > 1e-9 {
		t.Errorf("full-job horizon = %v, want %v", got, want)
	}
	if got, want := horizon(0, []*sched.JobState{half}, round), round+max/2; math.Abs(got-want) > 1e-9 {
		t.Errorf("half-job horizon = %v, want %v", got, want)
	}

	// A job with no usable accelerator type has an infinite worst case;
	// the horizon must skip it rather than go infinite.
	unusable := &job.Job{
		ID: 1, Name: "stuck", Model: "unit-test", Workers: 1,
		Epochs: 10, ItersPerEpoch: 1,
		Throughput: map[gpu.Type]float64{},
	}
	if !math.IsInf(unusable.MaxDuration(), 1) {
		t.Fatal("test premise broken: unusable job has finite MaxDuration")
	}
	states := []*sched.JobState{full, {Job: unusable, Remaining: unusable.TotalIters()}}
	got := horizon(0, states, round)
	if math.IsInf(got, 1) {
		t.Fatal("horizon went infinite on an unplaceable job")
	}
	if want := round + max; math.Abs(got-want) > 1e-9 {
		t.Errorf("horizon with unusable job = %v, want %v (infinite term skipped)", got, want)
	}
}
