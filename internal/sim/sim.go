// Package sim implements the trace-driven, round-based cluster
// simulator used for the paper's evaluation. Time advances in scheduling
// rounds (6 minutes by default); at each round boundary the scheduler
// under test produces task-level allocations for all arrived, unfinished
// jobs, and the simulator advances every allocated job at its bottleneck
// throughput, charging checkpoint-restart overhead to jobs whose
// allocation changed.
//
// Resources move only at round boundaries (a job finishing mid-round
// holds its GPUs until the boundary, which is what makes the round
// length a performance knob, Fig. 9), but completion times are recorded
// at second granularity so JCT is not quantized.
package sim

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/gpu"
	"repro/internal/invariant"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// Options configures a simulation run.
type Options struct {
	// RoundLength is the scheduling interval in seconds (paper default:
	// 6 minutes).
	RoundLength float64
	// UseModelCosts selects the Table IV per-model checkpoint cost model
	// instead of the flat delay.
	UseModelCosts bool
	// FlatDelay is the checkpoint-restart stall charged to a job whose
	// allocation changed, when UseModelCosts is false. The paper's
	// simulator uses 10 s.
	FlatDelay float64
	// QuantizeCompletions records job finish times at the round boundary
	// instead of the exact second (ablation 1 in DESIGN.md).
	QuantizeCompletions bool
	// CheckpointContention models shared checkpoint storage: when
	// several reallocated jobs save/restore through the same node's SSD
	// in the same round, each job's stall is multiplied by the number of
	// jobs contending on its busiest node (the paper's prototype gives
	// every instance a ~1000 MiB/s SSD, so contention arises only
	// within a node).
	CheckpointContention bool
	// MaxRounds aborts a runaway simulation. 0 means a generous default.
	MaxRounds int
	// StallLimit aborts after this many consecutive rounds in which
	// active jobs exist but nothing is allocated (scheduler starvation
	// bug guard). 0 means a default of 5000 rounds.
	StallLimit int
	// Failures injects machine outages: while a node is down, the
	// schedulers see it with zero capacity, and any job allocated on it
	// when the outage begins loses that round's progress (work since
	// its last checkpoint) and must be re-placed.
	Failures []Failure
	// EventLog, when non-nil, receives one JSON line per simulation
	// event (arrivals, starts, reallocations, pauses, completions, node
	// outages). Parse with ReadEvents.
	EventLog io.Writer
	// Validate runs the correctness oracle (internal/invariant) on
	// every round's joint decision and on the final report: capacity,
	// gang, iteration-conservation, dual-price and report-consistency
	// invariants all hold or Run fails with the violation. Tests enable
	// it via ValidatedOptions; benchmarks leave it off (disabled, the
	// checker costs nothing).
	Validate bool
}

// Failure is one machine outage window [Start, End).
type Failure struct {
	Node  int
	Start float64
	End   float64
}

// downNodes returns the set of failed nodes overlapping the round
// [now, now+round).
func downNodes(failures []Failure, now, round float64) map[int]bool {
	var down map[int]bool
	for _, f := range failures {
		if f.Start < now+round && f.End > now {
			if down == nil {
				down = make(map[int]bool)
			}
			down[f.Node] = true
		}
	}
	return down
}

// sortedNodeIDs returns the keys of a down-node set in ascending order
// so event emission and validation iterate deterministically.
func sortedNodeIDs(m map[int]bool) []int {
	ids := make([]int, 0, len(m))
	for n := range m {
		ids = append(ids, n)
	}
	sort.Ints(ids)
	return ids
}

// DefaultOptions returns the paper's simulation settings.
func DefaultOptions() Options {
	return Options{
		RoundLength: checkpoint.RoundSeconds,
		FlatDelay:   checkpoint.DefaultDelay,
	}
}

// ValidatedOptions returns DefaultOptions with the invariant checker
// enabled. Tests simulate with it so every round is validated against
// the paper's model; benchmarks use DefaultOptions to measure the
// unchecked hot path.
func ValidatedOptions() Options {
	o := DefaultOptions()
	o.Validate = true
	return o
}

func (o *Options) normalize() error {
	if o.RoundLength <= 0 {
		return fmt.Errorf("sim: non-positive round length %v", o.RoundLength)
	}
	if o.FlatDelay < 0 || o.FlatDelay >= o.RoundLength {
		return fmt.Errorf("sim: flat delay %v outside [0, round)", o.FlatDelay)
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 2_000_000
	}
	if o.StallLimit == 0 {
		o.StallLimit = 5000
	}
	for _, f := range o.Failures {
		if f.End <= f.Start || f.Start < 0 {
			return fmt.Errorf("sim: invalid failure window [%v, %v) on node %d", f.Start, f.End, f.Node)
		}
	}
	return nil
}

// Run simulates the scheduler on the trace and returns the metrics
// report. It returns an error for malformed inputs or scheduler protocol
// violations (broken gang constraint, capacity overflow, allocation to
// unknown jobs).
func Run(c *cluster.Cluster, jobs []*job.Job, s sched.Scheduler, opts Options) (*metrics.Report, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	totalGPUs := c.TotalGPUs()
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		usable := 0
		for _, t := range sched.UsableTypes(j) {
			usable += c.TotalOfType(t)
		}
		if usable < j.Workers {
			return nil, fmt.Errorf("sim: %v can never be placed (needs %d workers, %d usable devices)",
				j, j.Workers, usable)
		}
	}

	// States in arrival order; jobs slice is not modified.
	ordered := append([]*job.Job(nil), jobs...)
	sortByArrival(ordered)
	states := make([]*sched.JobState, len(ordered))
	for i, j := range ordered {
		states[i] = &sched.JobState{
			Job:          j,
			Remaining:    j.TotalIters(),
			RoundsByType: make(map[gpu.Type]float64),
		}
	}

	report := &metrics.Report{Scheduler: s.Name(), TotalGPUs: totalGPUs}
	log := newEventLogger(opts.EventLog)
	// Correctness oracle, enabled by Options.Validate: observes every
	// round's decisions and progress accounting and fails the run on
	// the first violated invariant. Rates are checked against the same
	// bottleneck model the simulator charges (full cluster, so node
	// straggler factors apply).
	var chk *invariant.Checker
	var rateModel func(j *job.Job, a cluster.Alloc) float64
	if opts.Validate {
		chk = invariant.NewChecker(c)
		rateModel = func(j *job.Job, a cluster.Alloc) float64 { return sched.Rate(j, c, a) }
	}
	// Persistent free-state for joint-decision validation: every round's
	// allocations are applied as a savepointed diff and rolled back,
	// instead of rebuilding the state from the cluster each round.
	freeState := cluster.NewState(c)
	prevDown := map[int]bool{}
	var active []*sched.JobState
	next := 0 // index of next not-yet-arrived job
	now := 0.0
	stalled := 0

	for round := 0; ; round++ {
		if round >= opts.MaxRounds {
			return nil, fmt.Errorf("sim: exceeded %d rounds with %d jobs unfinished", opts.MaxRounds, len(active)+len(states)-next)
		}
		// Admit arrivals up to now.
		for next < len(states) && states[next].Job.Arrival <= now {
			active = append(active, states[next])
			if err := log.emit(Event{Time: states[next].Job.Arrival, Round: round,
				Type: EventArrive, Job: states[next].Job.ID, Node: -1}); err != nil {
				return nil, err
			}
			next++
		}
		if len(active) == 0 {
			if next >= len(states) {
				break // all done
			}
			// Fast-forward to the round boundary at or after the next
			// arrival.
			arr := states[next].Job.Arrival
			skip := math.Ceil(arr/opts.RoundLength) * opts.RoundLength
			if skip <= now {
				skip = now + opts.RoundLength
			}
			now = skip
			continue
		}

		// Failure handling: schedulers see nodes that are down *now*
		// (they cannot foresee an outage beginning mid-round), while
		// progress accounting uses any outage overlapping the round.
		viewDown := downNodes(opts.Failures, now, 1e-9)
		surpriseDown := downNodes(opts.Failures, now, opts.RoundLength)
		viewCluster := c
		if len(viewDown) > 0 {
			viewCluster = c.Without(viewDown)
		}
		for _, n := range sortedNodeIDs(viewDown) {
			if !prevDown[n] {
				report.Faults.NodeDown++
				if err := log.emit(Event{Time: now, Round: round, Type: EventNodeDown, Job: -1, Node: n}); err != nil {
					return nil, err
				}
			}
		}
		for _, n := range sortedNodeIDs(prevDown) {
			if !viewDown[n] {
				report.Faults.NodeUp++
				if err := log.emit(Event{Time: now, Round: round, Type: EventNodeUp, Job: -1, Node: n}); err != nil {
					return nil, err
				}
			}
		}
		prevDown = viewDown
		if prevDown == nil {
			prevDown = map[int]bool{}
		}

		ctx := &sched.Context{
			Now:         now,
			Round:       round,
			RoundLength: opts.RoundLength,
			Horizon:     horizon(now, active, opts.RoundLength),
			Cluster:     viewCluster,
			Jobs:        append([]*sched.JobState(nil), active...),
		}
		//lint:ignore wallclock DecisionTime reports the scheduler's real compute latency; it never feeds back into simulated time
		start := time.Now()
		decisions := s.Schedule(ctx)
		//lint:ignore wallclock real solver latency for the report, not simulated time
		report.DecisionTime += time.Since(start)
		report.Decisions++
		report.Rounds++

		// Validate the joint decision.
		activeByID := make(map[int]*sched.JobState, len(active))
		for _, st := range active {
			activeByID[st.Job.ID] = st
		}
		// Validate against the persistent state: down nodes keep their
		// capacity there (the schedulers saw them with zero capacity via
		// viewCluster), so placements on them are rejected explicitly.
		sp := freeState.Savepoint()
		decisionIDs := make([]int, 0, len(decisions))
		for id := range decisions {
			decisionIDs = append(decisionIDs, id)
		}
		sort.Ints(decisionIDs)
		for _, id := range decisionIDs {
			alloc := decisions[id]
			st, ok := activeByID[id]
			if !ok {
				if alloc.Workers() > 0 {
					return nil, fmt.Errorf("sim: %s allocated to unknown or inactive job %d", s.Name(), id)
				}
				continue
			}
			if err := sched.Validate(st.Job, alloc); err != nil {
				return nil, fmt.Errorf("sim: %s: %w", s.Name(), err)
			}
			if alloc.Workers() > 0 {
				for _, p := range alloc {
					if p.Count > 0 && prevDown[p.Node] {
						return nil, fmt.Errorf("sim: %s over-allocated: node %d is down, has 0 free %s, need %d",
							s.Name(), p.Node, p.Type, p.Count)
					}
				}
				if err := freeState.Allocate(alloc); err != nil {
					return nil, fmt.Errorf("sim: %s over-allocated: %w", s.Name(), err)
				}
			}
		}
		freeState.Rollback(sp)

		// Apply decisions. First pass: detect reallocations and, when
		// contention modeling is on, count how many reallocated jobs
		// checkpoint through each node this round.
		type appliedJob struct {
			st      *sched.JobState
			alloc   cluster.Alloc
			prev    cluster.Alloc
			changed bool
		}
		applied := make([]appliedJob, 0, len(active))
		nodeCheckpoints := map[int]int{}
		for _, st := range active {
			newAlloc := decisions[st.Job.ID].Canonical()
			prev := st.Alloc
			changed := !newAlloc.Equal(prev)
			st.Alloc = newAlloc
			applied = append(applied, appliedJob{st: st, alloc: newAlloc, prev: prev, changed: changed})
			if opts.CheckpointContention && changed {
				for _, p := range prev.Canonical() {
					nodeCheckpoints[p.Node]++
				}
				for _, p := range newAlloc {
					nodeCheckpoints[p.Node]++
				}
			}
		}

		// Second pass: advance each allocated job.
		anyAllocated := false
		heldThisRound := 0
		var stillActive []*sched.JobState
		var obs []invariant.JobRound
		observe := func(st *sched.JobState, alloc cluster.Alloc, before, window float64, killed bool) {
			obs = append(obs, invariant.JobRound{
				Job: st.Job, Alloc: alloc,
				RemainingBefore: before, RemainingAfter: st.Remaining,
				Window: window, Killed: killed,
			})
		}
		for _, aj := range applied {
			st, newAlloc, prev, changed := aj.st, aj.alloc, aj.prev, aj.changed
			remBefore := st.Remaining
			w := newAlloc.Workers()
			if w == 0 {
				if prev.Workers() > 0 {
					if err := log.emit(Event{Time: now, Round: round, Type: EventPause,
						Job: st.Job.ID, Node: -1}); err != nil {
						return nil, err
					}
				}
				if chk != nil {
					observe(st, nil, remBefore, 0, false)
				}
				stillActive = append(stillActive, st)
				continue
			}
			anyAllocated = true
			if !st.Started {
				st.Started = true
				st.StartTime = now
				if err := log.emit(Event{Time: now, Round: round, Type: EventStart,
					Job: st.Job.ID, Node: -1, Alloc: newAlloc.String()}); err != nil {
					return nil, err
				}
			}
			report.JobRoundAllocs++
			// Accumulates within the conservation oracle's tolerance
			// (invariant.Tol); checked against busy time per round.
			report.HeldGPUSeconds += float64(w) * opts.RoundLength
			heldThisRound += w
			realloc := changed && prev.Workers() > 0
			if realloc {
				report.JobRoundReallocs++
				st.Reallocations++
				if err := log.emit(Event{Time: now, Round: round, Type: EventRealloc,
					Job: st.Job.ID, Node: -1, Alloc: newAlloc.String()}); err != nil {
					return nil, err
				}
			}

			delay := stallFor(st.Job.Model, changed, opts)
			if opts.CheckpointContention && changed {
				factor := 1
				for _, p := range append(newAlloc.Canonical(), prev.Canonical()...) {
					if n := nodeCheckpoints[p.Node]; n > factor {
						factor = n
					}
				}
				delay *= float64(factor)
			}
			if delay >= opts.RoundLength {
				delay = opts.RoundLength
			}
			window := opts.RoundLength - delay
			rate := sched.Rate(st.Job, c, newAlloc)
			// A node failing during the round kills the gang's progress
			// for the whole round: the work since the last checkpoint is
			// lost and the job re-places at the next boundary.
			if len(surpriseDown) > 0 {
				killed := false
				for _, p := range newAlloc {
					if surpriseDown[p.Node] {
						killed = true
						break
					}
				}
				if killed {
					lost := rate * window
					if lost > st.Remaining {
						lost = st.Remaining
					}
					// Accumulates within the oracle's tolerance (invariant.Tol).
					report.Faults.LostIterations += lost
					report.Faults.Recoveries++
					if chk != nil {
						observe(st, newAlloc, remBefore, window, true)
					}
					stillActive = append(stillActive, st)
					continue
				}
			}
			st.Rounds++
			for _, t := range newAlloc.Types() {
				st.RoundsByType[t]++
			}

			if rate <= 0 {
				// Allocated but cannot progress (validated types make
				// this unreachable, but stay safe).
				if chk != nil {
					observe(st, newAlloc, remBefore, window, false)
				}
				stillActive = append(stillActive, st)
				continue
			}
			if st.Remaining <= rate*window {
				// Finishes within this round.
				tau := st.Remaining / rate
				st.Remaining = 0
				// Both accumulate within invariant.Tol tolerance; the
				// invariant oracle re-derives them each round.
				st.Attained += float64(w) * tau
				report.BusyGPUSeconds += float64(w) * tau
				finish := now + delay + tau
				if opts.QuantizeCompletions {
					finish = now + opts.RoundLength
				}
				report.Jobs = append(report.Jobs, jobResult(st, finish, len(jobs), totalGPUs))
				if err := log.emit(Event{Time: finish, Round: round, Type: EventFinish,
					Job: st.Job.ID, Node: -1}); err != nil {
					return nil, err
				}
				if finish > report.Makespan {
					report.Makespan = finish
				}
				if chk != nil {
					observe(st, newAlloc, remBefore, window, false)
				}
				// Job leaves the active set; its GPUs are free from the
				// next boundary on (the simulator rebuilds allocations
				// each round).
				continue
			}
			// All three accumulate within invariant.Tol tolerance; the
			// oracle checks conservation of work to that tolerance each round.
			st.Remaining -= rate * window
			st.Attained += float64(w) * window
			report.BusyGPUSeconds += float64(w) * window
			if chk != nil {
				observe(st, newAlloc, remBefore, window, false)
			}
			stillActive = append(stillActive, st)
		}
		active = stillActive
		if chk != nil {
			chk.CheckRound(invariant.Round{
				Index: round, Now: now, Length: opts.RoundLength,
				Down: prevDown, Jobs: obs, Scheduler: s, Rate: rateModel,
			})
			// Fail fast so the offending round is the one in the error.
			if err := chk.Err(); err != nil {
				return nil, fmt.Errorf("sim: %s: %w", s.Name(), err)
			}
		}
		report.RoundHeld = append(report.RoundHeld, heldThisRound)
		report.RoundStarts = append(report.RoundStarts, now)

		if !anyAllocated && len(active) > 0 {
			stalled++
			if stalled >= opts.StallLimit {
				return nil, fmt.Errorf("sim: %s stalled for %d rounds with %d active jobs at t=%.0fs",
					s.Name(), stalled, len(active), now)
			}
		} else {
			stalled = 0
		}
		now += opts.RoundLength
		if len(active) == 0 && next >= len(states) {
			break
		}
	}
	report.SortJobsByID()
	if chk != nil {
		chk.CheckReport(report, ordered)
		if err := chk.Err(); err != nil {
			return nil, fmt.Errorf("sim: %s: %w", s.Name(), err)
		}
	}
	return report, nil
}

// stallFor returns the checkpoint stall (seconds) at the start of a
// round for a job whose allocation did or did not change. "changed"
// includes the job's very first allocation (the initial model load).
func stallFor(model string, changed bool, opts Options) float64 {
	if opts.UseModelCosts {
		return checkpoint.Delay(model, changed)
	}
	if changed {
		return opts.FlatDelay
	}
	return 0
}

// horizon estimates the scheduling horizon T for the price bounds: the
// current time plus the serial worst-case runtime of all active jobs.
func horizon(now float64, active []*sched.JobState, round float64) float64 {
	h := now + round
	for _, st := range active {
		d := st.Job.MaxDuration()
		if math.IsInf(d, 1) {
			continue
		}
		// Scale the per-job worst case by its remaining fraction.
		frac := st.Remaining / st.Job.TotalIters()
		h += d * frac
	}
	return h
}

func jobResult(st *sched.JobState, finish float64, n, totalGPUs int) metrics.JobResult {
	_, best, _ := st.Job.BestType()
	return metrics.JobResult{
		ID:         st.Job.ID,
		Model:      st.Job.Model,
		Workers:    st.Job.Workers,
		Arrival:    st.Job.Arrival,
		Start:      st.StartTime,
		Finish:     finish,
		TotalIters: st.Job.TotalIters(),
		IsolatedDuration: metrics.IsolatedDuration(
			st.Job.TotalIters(), st.Job.Workers, best, n, totalGPUs),
		Reallocations: st.Reallocations,
	}
}

func sortByArrival(jobs []*job.Job) {
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && less(jobs[k], jobs[k-1]); k-- {
			jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
		}
	}
}

func less(a, b *job.Job) bool {
	if a.Arrival < b.Arrival {
		return true
	}
	if a.Arrival > b.Arrival {
		return false
	}
	return a.ID < b.ID
}
