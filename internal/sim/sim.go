// Package sim implements the trace-driven, round-based cluster
// simulator used for the paper's evaluation. Time advances in scheduling
// rounds (6 minutes by default); at each round boundary the scheduler
// under test produces task-level allocations for all arrived, unfinished
// jobs, and the simulator advances every allocated job at its bottleneck
// throughput, charging checkpoint-restart overhead to jobs whose
// allocation changed.
//
// Resources move only at round boundaries (a job finishing mid-round
// holds its GPUs until the boundary, which is what makes the round
// length a performance knob, Fig. 9), but completion times are recorded
// at second granularity so JCT is not quantized.
package sim

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sched"
)

// Options configures a simulation run.
type Options struct {
	// RoundLength is the scheduling interval in seconds (paper default:
	// 6 minutes).
	RoundLength float64
	// UseModelCosts selects the Table IV per-model checkpoint cost model
	// instead of the flat delay.
	UseModelCosts bool
	// FlatDelay is the checkpoint-restart stall charged to a job whose
	// allocation changed, when UseModelCosts is false. The paper's
	// simulator uses 10 s.
	FlatDelay float64
	// QuantizeCompletions records job finish times at the round boundary
	// instead of the exact second (ablation 1 in DESIGN.md).
	QuantizeCompletions bool
	// CheckpointContention models shared checkpoint storage: when
	// several reallocated jobs save/restore through the same node's SSD
	// in the same round, each job's stall is multiplied by the number of
	// jobs contending on its busiest node (the paper's prototype gives
	// every instance a ~1000 MiB/s SSD, so contention arises only
	// within a node).
	CheckpointContention bool
	// MaxRounds aborts a runaway simulation. 0 means a generous default.
	MaxRounds int
	// StallLimit aborts after this many consecutive rounds in which
	// active jobs exist but nothing is allocated (scheduler starvation
	// bug guard). 0 means a default of 5000 rounds.
	StallLimit int
	// Failures injects machine outages: while a node is down, the
	// schedulers see it with zero capacity, and any job allocated on it
	// when the outage begins loses that round's progress (work since
	// its last checkpoint) and must be re-placed.
	Failures []Failure
	// EventLog, when non-nil, receives one JSON line per simulation
	// event (arrivals, starts, reallocations, pauses, completions, node
	// outages). Parse with ReadEvents.
	EventLog io.Writer
	// Validate runs the correctness oracle (internal/invariant) on
	// every round's joint decision and on the final report: capacity,
	// gang, iteration-conservation, dual-price and report-consistency
	// invariants all hold or Run fails with the violation. Tests enable
	// it via ValidatedOptions; benchmarks leave it off (disabled, the
	// checker costs nothing).
	Validate bool
}

// Failure is one machine outage window [Start, End).
type Failure struct {
	Node  int
	Start float64
	End   float64
}

// downNodes returns the set of failed nodes overlapping the round
// [now, now+round).
func downNodes(failures []Failure, now, round float64) map[int]bool {
	var down map[int]bool
	for _, f := range failures {
		if f.Start < now+round && f.End > now {
			if down == nil {
				down = make(map[int]bool)
			}
			down[f.Node] = true
		}
	}
	return down
}

// sortedNodeIDs returns the keys of a down-node set in ascending order
// so event emission and validation iterate deterministically.
func sortedNodeIDs(m map[int]bool) []int {
	ids := make([]int, 0, len(m))
	for n := range m {
		ids = append(ids, n)
	}
	sort.Ints(ids)
	return ids
}

// DefaultOptions returns the paper's simulation settings.
func DefaultOptions() Options {
	return Options{
		RoundLength: checkpoint.RoundSeconds,
		FlatDelay:   checkpoint.DefaultDelay,
	}
}

// ValidatedOptions returns DefaultOptions with the invariant checker
// enabled. Tests simulate with it so every round is validated against
// the paper's model; benchmarks use DefaultOptions to measure the
// unchecked hot path.
func ValidatedOptions() Options {
	o := DefaultOptions()
	o.Validate = true
	return o
}

func (o *Options) normalize() error {
	if o.RoundLength <= 0 {
		return fmt.Errorf("sim: non-positive round length %v", o.RoundLength)
	}
	if o.FlatDelay < 0 || o.FlatDelay >= o.RoundLength {
		return fmt.Errorf("sim: flat delay %v outside [0, round)", o.FlatDelay)
	}
	if o.MaxRounds == 0 {
		o.MaxRounds = 2_000_000
	}
	if o.StallLimit == 0 {
		o.StallLimit = 5000
	}
	for _, f := range o.Failures {
		if f.End <= f.Start || f.Start < 0 {
			return fmt.Errorf("sim: invalid failure window [%v, %v) on node %d", f.Start, f.End, f.Node)
		}
	}
	return nil
}

// Run simulates the scheduler on the trace and returns the metrics
// report. It returns an error for malformed inputs or scheduler protocol
// violations (broken gang constraint, capacity overflow, allocation to
// unknown jobs).
//
// Run is a thin drive-to-completion wrapper over the steppable Engine:
// it submits every job of the trace up front, processes round
// boundaries until the event queue drains, and finalizes the report.
// Callers that need online arrivals, cancellation, or mid-run
// observation use the Engine directly.
func Run(c *cluster.Cluster, jobs []*job.Job, s sched.Scheduler, opts Options) (*metrics.Report, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("sim: empty trace")
	}
	eng, err := NewEngine(c, s, opts)
	if err != nil {
		return nil, err
	}
	// Submit in arrival order; the jobs slice is not modified. Ties on
	// arrival time break by ascending ID, and the event queue preserves
	// submission order among simultaneous events, so admission matches
	// the sorted-trace batch protocol exactly.
	ordered := append([]*job.Job(nil), jobs...)
	sortByArrival(ordered)
	for _, j := range ordered {
		if err := eng.SubmitJob(j); err != nil {
			return nil, err
		}
	}
	for eng.HasPendingEvents() {
		if err := eng.ProcessNextEvent(); err != nil {
			return nil, err
		}
	}
	return eng.Finish()
}

// stallFor returns the checkpoint stall (seconds) at the start of a
// round for a job whose allocation did or did not change. "changed"
// includes the job's very first allocation (the initial model load).
func stallFor(model string, changed bool, opts Options) float64 {
	if opts.UseModelCosts {
		return checkpoint.Delay(model, changed)
	}
	if changed {
		return opts.FlatDelay
	}
	return 0
}

// horizon estimates the scheduling horizon T for the price bounds: the
// current time plus the serial worst-case runtime of all active jobs.
func horizon(now float64, active []*sched.JobState, round float64) float64 {
	h := now + round
	for _, st := range active {
		d := st.Job.MaxDuration()
		if math.IsInf(d, 1) {
			continue
		}
		// Scale the per-job worst case by its remaining fraction.
		frac := st.Remaining / st.Job.TotalIters()
		h += d * frac
	}
	return h
}

func jobResult(st *sched.JobState, finish float64, n, totalGPUs int) metrics.JobResult {
	_, best, _ := st.Job.BestType()
	return metrics.JobResult{
		ID:         st.Job.ID,
		Model:      st.Job.Model,
		Workers:    st.Job.Workers,
		Arrival:    st.Job.Arrival,
		Start:      st.StartTime,
		Finish:     finish,
		TotalIters: st.Job.TotalIters(),
		IsolatedDuration: metrics.IsolatedDuration(
			st.Job.TotalIters(), st.Job.Workers, best, n, totalGPUs),
		Reallocations: st.Reallocations,
	}
}

func sortByArrival(jobs []*job.Job) {
	for i := 1; i < len(jobs); i++ {
		for k := i; k > 0 && less(jobs[k], jobs[k-1]); k-- {
			jobs[k], jobs[k-1] = jobs[k-1], jobs[k]
		}
	}
}

func less(a, b *job.Job) bool {
	if a.Arrival < b.Arrival {
		return true
	}
	if a.Arrival > b.Arrival {
		return false
	}
	return a.ID < b.ID
}
