// Package repro's benchmark harness regenerates every table and figure
// of the Hadar paper's evaluation (see DESIGN.md's per-experiment index)
// plus the design-choice ablations. Figures run at a reduced trace scale
// so `go test -bench=.` finishes in minutes; `go run ./cmd/experiments
// -all` runs the full 480-job paper scale.
//
// Benchmarks report domain metrics through b.ReportMetric:
// avg-JCT hours, speedup factors, utilization percentages.
package repro

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/metrics"
	"repro/internal/profiler"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// --- Allocation-state hot-path microbenchmarks (DESIGN.md
// "Allocation-state layer"). These isolate the per-round scheduling
// inner loop: the memoized DP dual subroutine, the greedy fallback, and
// a full end-to-end simulation at paper scale.

// benchSchedContext builds a single-round scheduling context over the
// paper's 15-node simulated cluster with numJobs pending jobs.
func benchSchedContext(b *testing.B, numJobs int) *sched.Context {
	b.Helper()
	cfg := trace.DefaultConfig()
	cfg.NumJobs = numJobs
	jobs, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	states := make([]*sched.JobState, len(jobs))
	horizon := 0.0
	for i, j := range jobs {
		states[i] = &sched.JobState{
			Job:          j,
			Remaining:    j.TotalIters(),
			RoundsByType: make(map[gpu.Type]float64),
		}
		horizon += j.MaxDuration()
	}
	return &sched.Context{
		Now:         0,
		Round:       0,
		RoundLength: 360,
		Horizon:     horizon,
		Cluster:     experiments.SimCluster(),
		Jobs:        states,
	}
}

// BenchmarkDPAllocate exercises Algorithm 2's exact memoized DP
// (dpAllocate) on a queue that fits under DPJobLimit.
func BenchmarkDPAllocate(b *testing.B) {
	ctx := benchSchedContext(b, 10)
	opts := core.DefaultOptions()
	opts.DPJobLimit = 10
	opts.Backfill = false
	s := core.New(opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(ctx)
	}
}

// BenchmarkGreedyAllocate exercises the large-queue greedy fallback
// (greedyAllocate) plus the work-conserving backfill pass.
func BenchmarkGreedyAllocate(b *testing.B) {
	ctx := benchSchedContext(b, 64)
	opts := core.DefaultOptions()
	opts.DPJobLimit = 0
	s := core.New(opts)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(ctx)
	}
}

// BenchmarkSimulate480Jobs runs the full seed experiment end to end:
// Hadar on the 480-job Philly-like trace over the paper's simulated
// cluster.
func BenchmarkSimulate480Jobs(b *testing.B) {
	cfg := trace.DefaultConfig()
	cfg.NumJobs = 480
	jobs, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sim.Run(experiments.SimCluster(), jobs, core.New(core.DefaultOptions()), sim.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(r.AvgJCT()/3600, "avgJCT-h")
		}
	}
}

// BenchmarkEngineStep measures one ProcessNextEvent call — the
// steppable engine's unit of work, one round boundary — with Hadar on
// a 64-job backlog over the paper's simulated cluster. The engine is
// rebuilt (outside the timer) whenever it drains.
func BenchmarkEngineStep(b *testing.B) {
	cfg := trace.DefaultConfig()
	cfg.NumJobs = 64
	jobs, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	newEngine := func() *sim.Engine {
		eng, err := sim.NewEngine(experiments.SimCluster(), core.New(core.DefaultOptions()), sim.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, j := range jobs {
			if err := eng.SubmitJob(j); err != nil {
				b.Fatal(err)
			}
		}
		return eng
	}
	eng := newEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !eng.HasPendingEvents() {
			b.StopTimer()
			eng = newEngine()
			b.StartTimer()
		}
		if err := eng.ProcessNextEvent(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSetup is the reduced scale used by the benchmark harness.
func benchSetup() experiments.Setup {
	s := experiments.DefaultSetup()
	s.NumJobs = 64
	return s
}

func reportJCTSpeedups(b *testing.B, cmp *experiments.Comparison, hadarName string) {
	b.Helper()
	h := cmp.Reports[hadarName]
	if h == nil {
		b.Fatalf("missing %s report", hadarName)
	}
	b.ReportMetric(h.AvgJCT()/3600, "hadar-avgJCT-h")
	for _, base := range []string{"gavel", "tiresias", "yarn-cs"} {
		if r, ok := cmp.Reports[base]; ok {
			b.ReportMetric(r.AvgJCT()/h.AvgJCT(), "x-avgJCT-vs-"+base)
		}
	}
}

// BenchmarkMotivationExample regenerates the Section II.A toy example:
// Hadar's task-level allocation vs Gavel on 2 V100 + 3 P100 + 1 K80.
func BenchmarkMotivationExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Motivation()
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			h := res.Cmp.Reports["hadar"].AvgJCT()
			g := res.Cmp.Reports["gavel"].AvgJCT()
			b.ReportMetric(100*(g-h)/g, "pct-JCT-improvement")
		}
	}
}

// BenchmarkFig3StaticCDF regenerates Fig. 3a: completion CDFs for the
// four schedulers on the static trace.
func BenchmarkFig3StaticCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(benchSetup(), false)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportJCTSpeedups(b, res.Cmp, "hadar")
		}
	}
}

// BenchmarkFig3ContinuousCDF regenerates Fig. 3b: the continuous
// (Poisson-arrival) trace.
func BenchmarkFig3ContinuousCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig3(benchSetup(), true)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportJCTSpeedups(b, res.Cmp, "hadar")
		}
	}
}

// BenchmarkFig4Utilization regenerates Fig. 4: cluster-wide GPU
// utilization for the four schedulers.
func BenchmarkFig4Utilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchSetup())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, name := range res.Cmp.Order {
				b.ReportMetric(100*res.Cmp.Reports[name].Utilization(), "util-pct-"+name)
			}
		}
	}
}

// BenchmarkFig5FTF regenerates Fig. 5: finish-time fairness for Hadar,
// Gavel, and Tiresias.
func BenchmarkFig5FTF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchSetup())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			h := res.Cmp.Reports["hadar"].AvgFTF()
			b.ReportMetric(h, "hadar-avgFTF")
			b.ReportMetric(res.Cmp.Reports["gavel"].AvgFTF()/h, "x-FTF-vs-gavel")
			b.ReportMetric(res.Cmp.Reports["tiresias"].AvgFTF()/h, "x-FTF-vs-tiresias")
		}
	}
}

// BenchmarkFig6Makespan regenerates Fig. 6: makespan under the
// makespan-minimization objective.
func BenchmarkFig6Makespan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(benchSetup())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			h := res.Cmp.Reports["hadar-makespan"].Makespan
			b.ReportMetric(h/3600, "hadar-makespan-h")
			b.ReportMetric(res.Cmp.Reports["gavel"].Makespan/h, "x-makespan-vs-gavel")
			b.ReportMetric(res.Cmp.Reports["tiresias"].Makespan/h, "x-makespan-vs-tiresias")
		}
	}
}

// BenchmarkFig7Scalability regenerates Fig. 7: scheduling-decision
// latency of Hadar vs Gavel as the active job count doubles from 32 to
// 512 (2048 at full scale via cmd/experiments).
func BenchmarkFig7Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(1, 512)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			last := res.Points[len(res.Points)-1]
			b.ReportMetric(float64(last.HadarLatency.Microseconds()), "hadar-us-at-512-jobs")
			b.ReportMetric(float64(last.GavelLatency.Microseconds()), "gavel-us-at-512-jobs")
		}
	}
}

// BenchmarkFig8RateSweep regenerates Fig. 8: min/avg/max JCT under
// varying input job rates for Hadar, Gavel, and Tiresias.
func BenchmarkFig8RateSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(benchSetup(), []float64{30, 60})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			// Report the JCT range (band tightness) at the higher rate.
			for _, p := range res.Points {
				if p.RatePerHour == 60 {
					b.ReportMetric((p.MaxJCT-p.MinJCT)/3600, "JCTrange-h-"+p.Scheduler)
				}
			}
		}
	}
}

// BenchmarkFig9RoundLength regenerates Fig. 9: the impact of the
// scheduling round length on Hadar's average JCT.
func BenchmarkFig9RoundLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(benchSetup(), []float64{6, 48}, []float64{40})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range res.Points {
				if p.RoundMinutes == 6 {
					b.ReportMetric(p.AvgJCT/3600, "avgJCT-h-6min-round")
				}
				if p.RoundMinutes == 48 {
					b.ReportMetric(p.AvgJCT/3600, "avgJCT-h-48min-round")
				}
			}
		}
	}
}

// BenchmarkFig10PhysicalUtilization regenerates Fig. 10: GPU
// utilization on the 8-GPU prototype configuration.
func BenchmarkFig10PhysicalUtilization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(7)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, name := range res.Cmp.Order {
				b.ReportMetric(100*res.Cmp.Reports[name].Utilization(), "util-pct-"+name)
			}
		}
	}
}

// BenchmarkTable3PhysicalCluster regenerates Table III: JCT and
// makespan on the prototype configuration, physical-cost and
// flat-cost modes.
func BenchmarkTable3PhysicalCluster(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(7)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			hp := res.Physical.Reports["hadar"]
			hs := res.Simulated.Reports["hadar"]
			b.ReportMetric(hp.AvgJCT()/3600, "hadar-physical-JCT-h")
			b.ReportMetric(hs.AvgJCT()/3600, "hadar-simulated-JCT-h")
			// The paper highlights <10% JCT divergence between physical
			// and simulated modes.
			b.ReportMetric(100*(hp.AvgJCT()-hs.AvgJCT())/hs.AvgJCT(), "phys-vs-sim-divergence-pct")
		}
	}
}

// BenchmarkTable4PreemptionOverhead regenerates Table IV from the
// checkpoint cost model.
func BenchmarkTable4PreemptionOverhead(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = experiments.Table4(360).String()
	}
	if len(out) == 0 {
		b.Fatal("empty table")
	}
}

// --- Ablations (DESIGN.md section 5) ---

func runHadarVariant(b *testing.B, opts core.Options, simOpts sim.Options, numJobs int) *metrics.Report {
	b.Helper()
	cfg := trace.DefaultConfig()
	cfg.NumJobs = numJobs
	return runHadarOn(b, opts, simOpts, experiments.SimCluster(), cfg)
}

func runHadarOn(b *testing.B, opts core.Options, simOpts sim.Options, c *cluster.Cluster, cfg trace.Config) *metrics.Report {
	b.Helper()
	jobs, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	r, err := sim.Run(c, jobs, core.New(opts), simOpts)
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkAblationRoundQuantizedJCT measures how much JCT precision the
// simulator's exact-completion-time design buys over round-quantized
// completion (DESIGN.md ablation 1).
func BenchmarkAblationRoundQuantizedJCT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exact := runHadarVariant(b, core.DefaultOptions(), sim.DefaultOptions(), 32)
		qOpts := sim.DefaultOptions()
		qOpts.QuantizeCompletions = true
		quant := runHadarVariant(b, core.DefaultOptions(), qOpts, 32)
		if i == b.N-1 {
			b.ReportMetric((quant.AvgJCT()-exact.AvgJCT())/60, "quantization-bias-min")
		}
	}
}

// BenchmarkAblationDPvsGreedy compares the exact DP dual subroutine with
// the greedy fallback on identical workloads (DESIGN.md ablation 2).
func BenchmarkAblationDPvsGreedy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dpOpts := core.DefaultOptions()
		dpOpts.DPJobLimit = 64
		dpOpts.NameSuffix = "-dp"
		greedyOpts := core.DefaultOptions()
		greedyOpts.DPJobLimit = 0
		greedyOpts.NameSuffix = "-greedy"
		dp := runHadarVariant(b, dpOpts, sim.DefaultOptions(), 16)
		greedy := runHadarVariant(b, greedyOpts, sim.DefaultOptions(), 16)
		if i == b.N-1 {
			b.ReportMetric(dp.AvgJCT()/3600, "dp-avgJCT-h")
			b.ReportMetric(greedy.AvgJCT()/3600, "greedy-avgJCT-h")
			b.ReportMetric(float64(dp.AvgDecisionTime().Microseconds()), "dp-decision-us")
			b.ReportMetric(float64(greedy.AvgDecisionTime().Microseconds()), "greedy-decision-us")
		}
	}
}

// BenchmarkAblationConsolidation sweeps the communication-cost surcharge
// that penalizes multi-server allocations (DESIGN.md ablation 3).
func BenchmarkAblationConsolidation(b *testing.B) {
	for _, comm := range []float64{0, 0.1, 0.5} {
		b.Run(commLabel(comm), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.CommCost = comm
				r := runHadarVariant(b, opts, sim.DefaultOptions(), 32)
				if i == b.N-1 {
					b.ReportMetric(r.AvgJCT()/3600, "avgJCT-h")
					b.ReportMetric(100*r.ReallocationFraction(), "realloc-pct")
				}
			}
		})
	}
}

func commLabel(c float64) string {
	switch c {
	case 0:
		return "comm=0"
	case 0.1:
		return "comm=0.1"
	default:
		return "comm=0.5"
	}
}

// BenchmarkAblationPriceFunction compares the exponential dual price
// (Eq. 5) against a linear price (DESIGN.md ablation 4).
func BenchmarkAblationPriceFunction(b *testing.B) {
	for _, exp := range []bool{true, false} {
		name := "exponential"
		if !exp {
			name = "linear"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.ExponentialPrice = exp
				r := runHadarVariant(b, opts, sim.DefaultOptions(), 32)
				if i == b.N-1 {
					b.ReportMetric(r.AvgJCT()/3600, "avgJCT-h")
				}
			}
		})
	}
}

// BenchmarkAblationTaskLevel quantifies the headline design choice: the
// gain of task-level (mixed-accelerator) gangs over job-level
// allocation (DESIGN.md ablation 5). Task-level placement matters when
// a gang exceeds every fast type's pool — the paper's motivating
// scenario ("a job requires 4 V100 GPUs, but the cluster has 3 V100 and
// 3 K80 available"). The ablation cluster has 6 V100 + 6 P100 + 8 K80,
// so 8-worker gangs only fit the slow K80 pool unless the scheduler can
// straddle V100+P100; the job-level variant must crawl on K80s.
func BenchmarkAblationTaskLevel(b *testing.B) {
	clus := func() *cluster.Cluster {
		return cluster.New(
			gpu.Fleet{gpu.V100: 3}, gpu.Fleet{gpu.V100: 3},
			gpu.Fleet{gpu.P100: 3}, gpu.Fleet{gpu.P100: 3},
			gpu.Fleet{gpu.K80: 4}, gpu.Fleet{gpu.K80: 4},
		)
	}
	cfg := trace.DefaultConfig()
	cfg.NumJobs = 24
	cfg.WorkerChoices = []int{2, 8}
	cfg.WorkerWeights = []float64{0.5, 0.5}
	for i := 0; i < b.N; i++ {
		taskOpts := core.DefaultOptions()
		jobOpts := core.DefaultOptions()
		jobOpts.TaskLevel = false
		jobOpts.NameSuffix = "-joblevel"
		task := runHadarOn(b, taskOpts, sim.DefaultOptions(), clus(), cfg)
		jobLevel := runHadarOn(b, jobOpts, sim.DefaultOptions(), clus(), cfg)
		if i == b.N-1 {
			b.ReportMetric(task.AvgJCT()/3600, "tasklevel-avgJCT-h")
			b.ReportMetric(jobLevel.AvgJCT()/3600, "joblevel-avgJCT-h")
			b.ReportMetric(jobLevel.AvgJCT()/task.AvgJCT(), "x-tasklevel-gain")
		}
	}
}

// BenchmarkAblationCheckpointContention measures the cost of shared
// checkpoint storage (each node's SSD serializes simultaneous
// save/restore traffic) on a churn-heavy workload.
func BenchmarkAblationCheckpointContention(b *testing.B) {
	cfg := trace.DefaultConfig()
	cfg.NumJobs = 32
	for i := 0; i < b.N; i++ {
		base := sim.DefaultOptions()
		base.UseModelCosts = true
		cont := base
		cont.CheckpointContention = true
		plain := runHadarOn(b, core.DefaultOptions(), base, experiments.SimCluster(), cfg)
		shared := runHadarOn(b, core.DefaultOptions(), cont, experiments.SimCluster(), cfg)
		if i == b.N-1 {
			b.ReportMetric(plain.AvgJCT()/3600, "avgJCT-h-dedicated-ssd")
			b.ReportMetric(shared.AvgJCT()/3600, "avgJCT-h-shared-ssd")
		}
	}
}

// BenchmarkProfilerOverhead compares oracle Hadar against the
// throughput-estimator-wrapped variant (Fig. 2's profiling path): the
// estimator must stay close to oracle JCT while learning X_j^r online.
func BenchmarkProfilerOverhead(b *testing.B) {
	cfg := trace.DefaultConfig()
	cfg.NumJobs = 32
	for i := 0; i < b.N; i++ {
		jobs, err := trace.Generate(cfg)
		if err != nil {
			b.Fatal(err)
		}
		oracle, err := sim.Run(experiments.SimCluster(), jobs,
			core.New(core.DefaultOptions()), sim.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		est, err := sim.Run(experiments.SimCluster(), jobs,
			profiler.New(core.New(core.DefaultOptions()), profiler.DefaultOptions()),
			sim.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(oracle.AvgJCT()/3600, "oracle-avgJCT-h")
			b.ReportMetric(est.AvgJCT()/3600, "estimator-avgJCT-h")
			b.ReportMetric(est.AvgJCT()/oracle.AvgJCT(), "x-estimator-overhead")
		}
	}
}
