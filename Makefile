# Repro of "Hadar: Heterogeneity-Aware Optimization-Based Online
# Scheduling for Deep Learning Cluster".
#
# `make check` is the full gate CI runs: build, vet, and the test suite
# under the race detector (the allocation-state layer is mutable shared
# scratch; -race guards against anyone threading it by accident).

GO ?= go

.PHONY: check build vet test race bench-smoke bench experiments

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs each allocation-state microbenchmark once: a fast
# regression canary that the hot path still runs, not a measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkDPAllocate|BenchmarkGreedyAllocate' -benchtime=1x -benchmem .

# bench takes real measurements of the scheduling hot path.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkDPAllocate|BenchmarkGreedyAllocate|BenchmarkSimulate480Jobs' -benchmem .

# experiments regenerates the paper's tables and figures at full scale.
experiments:
	$(GO) run ./cmd/experiments -all
