# Repro of "Hadar: Heterogeneity-Aware Optimization-Based Online
# Scheduling for Deep Learning Cluster".
#
# `make check` is the full gate CI runs: build, vet, and the test suite
# under the race detector (the allocation-state layer is mutable shared
# scratch; -race guards against anyone threading it by accident; the
# rpccluster fault tests — including the always-on single-seed chaos
# run — are part of the suite, so the control plane's retry/recovery
# paths are raced on every check).

GO ?= go

.PHONY: check build vet test race bench-smoke bench experiments chaos fuzz-smoke cover

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs each allocation-state microbenchmark once: a fast
# regression canary that the hot path still runs, not a measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkDPAllocate|BenchmarkGreedyAllocate' -benchtime=1x -benchmem .

# bench takes real measurements of the scheduling hot path.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkDPAllocate|BenchmarkGreedyAllocate|BenchmarkSimulate480Jobs' -benchmem .

# fuzz-smoke gives every fuzz target a short budget. Go fuzzes one
# target per invocation, so each gets its own run; FUZZTIME=2m for a
# deeper local session.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzSolve$$' -fuzztime=$(FUZZTIME) ./internal/lp
	$(GO) test -run='^$$' -fuzz='^FuzzReadPhillyCSV$$' -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz='^FuzzReadTraceJSON$$' -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz='^FuzzStateTransactions$$' -fuzztime=$(FUZZTIME) ./internal/cluster
	$(GO) test -run='^$$' -fuzz='^FuzzSimRun$$' -fuzztime=$(FUZZTIME) ./internal/sim

# cover prints per-package statement coverage and enforces floors on
# the packages the correctness story leans on: the Hadar core, the
# simulator, and the invariant oracle itself. Floors sit a few points
# under current coverage so they flag erosion, not noise.
cover:
	@out="$$($(GO) test -cover ./...)" || { printf '%s\n' "$$out"; exit 1; }; \
	printf '%s\n' "$$out"; \
	printf '%s\n' "$$out" | awk ' \
		{ floor = 0 } \
		$$2 == "repro/internal/core"      { floor = 85 } \
		$$2 == "repro/internal/sim"       { floor = 88 } \
		$$2 == "repro/internal/invariant" { floor = 90 } \
		floor > 0 { \
			pct = 0; \
			for (i = 1; i <= NF; i++) if ($$i == "coverage:") pct = $$(i+1) + 0; \
			if (pct < floor) { printf "FAIL coverage floor: %s at %s%% (floor %s%%)\n", $$2, pct, floor; bad = 1 } \
			else { printf "coverage floor ok: %s at %s%% (floor %s%%)\n", $$2, pct, floor } \
		} \
		END { exit bad }'

# experiments regenerates the paper's tables and figures at full scale.
experiments:
	$(GO) run ./cmd/experiments -all

# chaos sweeps the fault-injection harness over a seed matrix: every
# seed runs the live control plane under RPC drops, injected latency,
# and a worker crash + restart, and must still complete every job.
chaos:
	$(GO) test -race -run 'TestChaosMatrix' -count=1 ./internal/rpccluster -args -chaosseeds=5
