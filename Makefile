# Repro of "Hadar: Heterogeneity-Aware Optimization-Based Online
# Scheduling for Deep Learning Cluster".
#
# `make check` is the full gate CI runs: build, vet, and the test suite
# under the race detector (the allocation-state layer is mutable shared
# scratch; -race guards against anyone threading it by accident; the
# rpccluster fault tests — including the always-on single-seed chaos
# run — are part of the suite, so the control plane's retry/recovery
# paths are raced on every check).

GO ?= go

.PHONY: check build vet test race bench-smoke bench experiments chaos

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke runs each allocation-state microbenchmark once: a fast
# regression canary that the hot path still runs, not a measurement.
bench-smoke:
	$(GO) test -run='^$$' -bench='BenchmarkDPAllocate|BenchmarkGreedyAllocate' -benchtime=1x -benchmem .

# bench takes real measurements of the scheduling hot path.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkDPAllocate|BenchmarkGreedyAllocate|BenchmarkSimulate480Jobs' -benchmem .

# experiments regenerates the paper's tables and figures at full scale.
experiments:
	$(GO) run ./cmd/experiments -all

# chaos sweeps the fault-injection harness over a seed matrix: every
# seed runs the live control plane under RPC drops, injected latency,
# and a worker crash + restart, and must still complete every job.
chaos:
	$(GO) test -race -run 'TestChaosMatrix' -count=1 ./internal/rpccluster -args -chaosseeds=5
