# Repro of "Hadar: Heterogeneity-Aware Optimization-Based Online
# Scheduling for Deep Learning Cluster".
#
# `make check` is the single local entry point and the gate CI runs:
# build, vet, repolint (the repository's domain-aware static-analysis
# suite, see internal/lint), the test suite, and per-package coverage
# floors. CI additionally runs the suite under the race detector (the
# `race` target) as its own job; run it locally before touching the
# control plane.

GO ?= go

.PHONY: check build vet lint lint-fast lint-deep test race race-short stress bench-smoke bench profile service-smoke fed-smoke experiments chaos crash-smoke crash-chaos fuzz-smoke fuzz-sync cover

check: build vet lint test cover

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs go vet plus repolint, the in-tree static-analysis suite
# enforcing determinism (no wall clock, no global rand, no map-order
# dependence in scheduler-path packages), numeric safety, concurrency
# hygiene, and API discipline — in two stages. lint-fast is the cheap
# per-package syntactic rules; lint-deep is the interprocedural pass
# (snapshot escape, goroutine ownership, digest taint, WAL ordering)
# over the whole-module callgraph, run with per-analyzer timing and a
# wall-time budget so it cannot silently blow up CI. `go run
# ./cmd/repolint -rules` lists the rule catalogue; suppress
# site-by-site with `//lint:ignore <rule> <reason>`.
LINTBUDGET ?= 90s
lint: lint-fast lint-deep

lint-fast: vet
	$(GO) run ./cmd/repolint -set fast .

lint-deep:
	$(GO) run ./cmd/repolint -set deep -verbose -budget $(LINTBUDGET) .

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-short runs the concurrent control plane — scheduler service,
# federation (shared clock + copy-on-publish snapshots), web API, load
# generator, live RPC cluster — under the race detector in short mode.
# The quick local gate before touching any of those packages; `race` is
# the full-suite version CI runs.
race-short:
	$(GO) test -race -short ./internal/federation ./internal/service ./internal/web ./internal/loadgen ./internal/rpccluster

# stress re-runs the live control plane's suite several times under the
# race detector: the heartbeat/reconnect/chaos paths are the only truly
# concurrent code, and their races only show up across repeated runs.
stress:
	$(GO) test -race -count=5 ./internal/rpccluster

# bench-smoke runs the allocation-state microbenchmarks and the small
# (60/250-node) scalability points once each, then gates the result:
# benchjson fails if any required op is missing from the output or if
# the DP round regressed more than 25% in ns/op against the committed
# BENCH_sim.json baseline. A canary that the hot path still runs at its
# recorded speed, not a measurement.
bench-smoke:
	$(GO) test -run='^$$' \
		-bench='BenchmarkGreedyAllocate$$|BenchmarkScaleRound/(prop|fixed)/nodes=(60|250)$$' \
		-benchtime=1x -benchmem -short . \
		| $(GO) run ./cmd/benchjson -o /tmp/bench-smoke.json \
			-require 'GreedyAllocate,ScaleRound/prop/nodes=60,ScaleRound/prop/nodes=250,ScaleRound/fixed/nodes=60,ScaleRound/fixed/nodes=250'
	$(GO) test -run='^$$' -bench='BenchmarkDPAllocate$$' -benchtime=200x -benchmem . \
		| $(GO) run ./cmd/benchjson -o /tmp/bench-smoke-dp.json \
			-require DPAllocate -baseline BENCH_sim.json -regress-op DPAllocate -regress-pct 25

# bench takes real measurements of the scheduling hot path — the DP
# round, the greedy round, the full 480-job simulation, a single engine
# step, the federation step (1/4/16 members), and the node-count
# scalability sweep (60/250/1k/5k nodes,
# proportional and fixed-backlog job series) — and records them as
# BENCH_sim.json (op, ns/op, allocs/op) via cmd/benchjson for machine
# comparison across commits. The ScaleRound points are also merged into
# results/fig7_scalability.csv alongside the exporter's jobs-sweep
# series.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkDPAllocate$$|BenchmarkGreedyAllocate$$|BenchmarkSimulate480Jobs$$|BenchmarkEngineStep$$|BenchmarkFederationStep$$|BenchmarkScaleRound' -benchmem . \
		| $(GO) run ./cmd/benchjson -o BENCH_sim.json -scale-csv results/fig7_scalability.csv

# profile captures CPU, heap, and execution-trace profiles of a
# paper-scale hadarsim run into profiles/ for go tool pprof / trace.
profile:
	mkdir -p profiles
	$(GO) run ./cmd/hadarsim -jobs 480 \
		-cpuprofile profiles/cpu.out -memprofile profiles/mem.out -exectrace profiles/trace.out
	@echo "profiles written: go tool pprof profiles/cpu.out | go tool trace profiles/trace.out"

# service-smoke boots the long-lived scheduler service (cmd/hadard) in
# smoke mode under the race detector: loadgen drives a seeded bursty
# workload through the bounded admission queue in closed loop, and the
# run fails unless every accepted job completes with zero invariant
# violations inside the budget.
service-smoke:
	$(GO) run -race ./cmd/hadard -smoke -smoke-jobs 80 -smoke-model bursty -smoke-seed 1 -smoke-timeout 120s

# fed-smoke is the federated twin of service-smoke: hadard boots three
# member clusters behind the least-queue router, loadgen drives the same
# closed-loop bursty workload through the shared front door, and the run
# fails unless every accepted job completes across the members with
# federation invariants (single ownership, iteration conservation) clean.
fed-smoke:
	$(GO) run -race ./cmd/hadard -clusters 3 -router least-queue -smoke -smoke-jobs 60 -smoke-model bursty -smoke-seed 1 -smoke-timeout 180s

# fuzz-smoke gives every fuzz target a short budget. Go fuzzes one
# target per invocation, so each gets its own run; FUZZTIME=2m for a
# deeper local session. fuzz-sync guards the list: every Fuzz function
# in the tree must either be wired in below or live under an excluded
# path. The analyzer corpora (internal/lint/testdata) are excluded —
# they are compile-only lint fixtures, and a corpus file is free to
# define FuzzXxx shapes for the analyzers to chew on without becoming
# a real fuzz target.
FUZZ_EXCLUDES := internal/lint/testdata
fuzz-sync:
	@fail=0; \
	for src in $$(grep -rl '^func Fuzz' --include='*.go' internal cmd 2>/dev/null); do \
		skip=0; \
		for ex in $(FUZZ_EXCLUDES); do case $$src in $$ex*) skip=1;; esac; done; \
		[ $$skip -eq 1 ] && continue; \
		for fn in $$(grep -ho '^func Fuzz[A-Za-z0-9_]*' $$src | sed 's/^func //'); do \
			grep -q "$$fn" Makefile || { echo "fuzz-sync: $$fn ($$src) is not wired into fuzz-smoke; add it or extend FUZZ_EXCLUDES"; fail=1; }; \
		done; \
	done; \
	exit $$fail

FUZZTIME ?= 10s
fuzz-smoke: fuzz-sync
	$(GO) test -run='^$$' -fuzz='^FuzzSolve$$' -fuzztime=$(FUZZTIME) ./internal/lp
	$(GO) test -run='^$$' -fuzz='^FuzzReadPhillyCSV$$' -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz='^FuzzReadTraceJSON$$' -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run='^$$' -fuzz='^FuzzStateTransactions$$' -fuzztime=$(FUZZTIME) ./internal/cluster
	$(GO) test -run='^$$' -fuzz='^FuzzSimRun$$' -fuzztime=$(FUZZTIME) ./internal/sim

# cover prints per-package statement coverage and enforces floors on
# the packages the correctness story leans on: the Hadar core, the
# simulator, and the invariant oracle itself. Floors sit a few points
# under current coverage so they flag erosion, not noise.
cover:
	@out="$$($(GO) test -cover ./...)" || { printf '%s\n' "$$out"; exit 1; }; \
	printf '%s\n' "$$out"; \
	printf '%s\n' "$$out" | awk ' \
		{ floor = 0 } \
		$$2 == "repro/internal/core"      { floor = 85 } \
		$$2 == "repro/internal/sim"       { floor = 88 } \
		$$2 == "repro/internal/invariant" { floor = 90 } \
		floor > 0 { \
			pct = 0; \
			for (i = 1; i <= NF; i++) if ($$i == "coverage:") pct = $$(i+1) + 0; \
			if (pct < floor) { printf "FAIL coverage floor: %s at %s%% (floor %s%%)\n", $$2, pct, floor; bad = 1 } \
			else { printf "coverage floor ok: %s at %s%% (floor %s%%)\n", $$2, pct, floor } \
		} \
		END { exit bad }'

# experiments regenerates the paper's tables and figures at full scale.
experiments:
	$(GO) run ./cmd/experiments -all

# chaos sweeps the fault-injection harness over a seed matrix: every
# seed runs the live control plane under RPC drops, injected latency,
# and a worker crash + restart, and must still complete every job.
chaos:
	$(GO) test -race -run 'TestChaosMatrix' -count=1 ./internal/rpccluster -args -chaosseeds=5

# crash-smoke is the CI-sized kill/restart loop for the write-ahead
# journal: a race-instrumented hadard is SIGKILLed (and torn mid-append
# via the crash failpoint) at seeded points, restarted with -recover,
# and must lose no acknowledged job, admit no duplicate, and replay to
# byte-identical per-round schedule digests.
crash-smoke:
	$(GO) build -race -o bin/hadard-race ./cmd/hadard
	$(GO) run ./cmd/crashchaos -hadard bin/hadard-race -seeds 4 -jobs 24 -timeout 120s

# crash-chaos is the full sweep: >= 20 seeds, each killing the server
# once or twice at a seed-derived point before finishing cleanly.
crash-chaos:
	$(GO) build -o bin/hadard ./cmd/hadard
	$(GO) run ./cmd/crashchaos -hadard bin/hadard -seeds 20 -jobs 32 -timeout 120s
