// Motivation: the paper's Section II.A toy example. Three jobs share a
// cluster of 2 V100, 3 P100 and 1 K80 GPUs. Gavel's job-level policy
// must place each gang on a single accelerator type, so job J1 (which
// wants 3 GPUs) settles for P100s; Hadar's task-level policy can run J1
// on 2 V100 + 1 K80 and finishes everything sooner.
//
//	go run ./examples/motivation
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/sched"
)

func main() {
	jobs := experiments.MotivationJobs()
	clus := experiments.MotivationCluster()
	fmt.Printf("cluster: %s\n", clus)
	for _, j := range jobs {
		fmt.Printf("  %s: %d workers, %d epochs, throughput V100=%.2f P100=%.2f K80=%.2f it/s\n",
			j.Name, j.Workers, j.Epochs,
			j.Throughput[gpu.V100], j.Throughput[gpu.P100], j.Throughput[gpu.K80])
	}

	// Peek at the first round: what does each scheduler give J1?
	fmt.Println("\nround-1 allocations:")
	for _, s := range []sched.Scheduler{experiments.NewHadar(), experiments.NewGavel()} {
		states := make([]*sched.JobState, len(jobs))
		for i, j := range jobs {
			states[i] = &sched.JobState{
				Job: j, Remaining: j.TotalIters(),
				RoundsByType: make(map[gpu.Type]float64),
			}
		}
		ctx := &sched.Context{
			Now: 0, Round: 0, RoundLength: 360, Horizon: 1e6,
			Cluster: clus, Jobs: states,
		}
		decisions := s.Schedule(ctx)
		fmt.Printf("  %-8s", s.Name())
		for _, j := range jobs {
			fmt.Printf("  %s=%v", j.Name, decisions[j.ID])
		}
		fmt.Println()
	}

	// Full simulation: per-job JCTs and the average-JCT improvement.
	result, err := experiments.Motivation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(result)
}
