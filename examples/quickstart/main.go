// Quickstart: schedule a small synthetic workload on a heterogeneous
// GPU cluster with Hadar and print the headline metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	// 1. Describe the cluster: six machines, three accelerator types
	// (large enough for the trace's 16-worker gangs).
	clus := cluster.New(
		gpu.Fleet{gpu.V100: 8}, gpu.Fleet{gpu.V100: 8},
		gpu.Fleet{gpu.P100: 8}, gpu.Fleet{gpu.P100: 8},
		gpu.Fleet{gpu.K80: 8}, gpu.Fleet{gpu.K80: 8},
	)

	// 2. Synthesize a 32-job trace following the paper's Philly-like
	// recipe (Table II models, heavy-tailed GPU-hour buckets).
	cfg := trace.DefaultConfig()
	cfg.NumJobs = 32
	cfg.Seed = 42
	jobs, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Build the Hadar scheduler with its default (average-JCT)
	// objective and run the round-based simulation.
	scheduler := core.New(core.DefaultOptions())
	report, err := sim.Run(clus, jobs, scheduler, sim.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Inspect the results.
	fmt.Println(report)
	fmt.Printf("completed %d jobs on %s\n", len(report.Jobs), clus)
	fmt.Printf("avg queue delay %.1f min, %.1f%% of job-rounds reallocated\n",
		report.AvgQueueDelay()/60, 100*report.ReallocationFraction())
	fmt.Printf("competitive-ratio factor alpha of the last round: %.2f (Hadar is 2*alpha-competitive)\n",
		scheduler.LastAlpha())

	fmt.Println("\nfirst five completions:")
	for i, j := range report.Jobs {
		if i == 5 {
			break
		}
		fmt.Printf("  job %2d (%s, %d workers): waited %5.1f min, ran %6.1f min, JCT %6.1f min\n",
			j.ID, j.Model, j.Workers, j.QueueDelay()/60, (j.Finish-j.Start)/60, j.JCT()/60)
	}
}
