// Continuous: online operation under Poisson arrivals, the paper's
// "continuous trace" setting, including a straggler machine. Jobs
// arrive over several hours; Hadar prices resources round by round,
// admits jobs by payoff, and steers work away from the slow node.
//
//	go run ./examples/continuous
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	clus := experiments.SimCluster()
	// Inject a straggler: node 0 (four V100s) runs at 40% speed, e.g. a
	// thermally-throttled machine. Hadar's rate model sees the slowdown
	// and avoids the node when faster capacity exists.
	clus.SetSpeed(0, 0.4)

	cfg := trace.DefaultConfig()
	cfg.NumJobs = 64
	cfg.Seed = 5
	cfg.Pattern = trace.Poisson
	cfg.Rate = 40.0 / 3600 // 40 jobs/hour
	jobs, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %s (node 0 is a 0.4x straggler)\n", clus)
	fmt.Printf("workload: %d jobs, Poisson arrivals at 40 jobs/hour\n\n", len(jobs))

	opts := core.DefaultOptions()
	opts.Aging = 6 * 3600 // age-boost pending jobs under continuous load
	report, err := sim.Run(clus, jobs, core.New(opts), sim.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report)
	fmt.Printf("avg queue delay: %.1f min\n", report.AvgQueueDelay()/60)
	fmt.Printf("JCT band: min %.2fh / median %.2fh / max %.2fh\n",
		report.MinJCT()/3600, report.MedianJCT()/3600, report.MaxJCT()/3600)

	// Completion timeline, like one Fig. 3b series.
	fmt.Println("\ncompletion timeline:")
	for i := 1; i <= 8; i++ {
		t := report.Makespan * float64(i) / 8
		fmt.Printf("  t=%6.1fh  %5.1f%% of jobs done\n", t/3600, 100*report.CompletionAt(t))
	}
}
