// Continuous: online operation under Poisson arrivals, the paper's
// "continuous trace" setting, including a straggler machine. Jobs
// arrive over several hours; Hadar prices resources round by round,
// admits jobs by payoff, and steers work away from the slow node.
//
// Unlike the batch examples, this one drives the steppable engine
// directly: jobs are submitted mid-run as their arrival times come due
// (the way a real front door sees them, not as a pre-sorted trace),
// and immutable cluster snapshots are read between steps to print a
// live utilization timeline.
//
//	go run ./examples/continuous
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	clus := experiments.SimCluster()
	// Inject a straggler: node 0 (four V100s) runs at 40% speed, e.g. a
	// thermally-throttled machine. Hadar's rate model sees the slowdown
	// and avoids the node when faster capacity exists.
	clus.SetSpeed(0, 0.4)

	cfg := trace.DefaultConfig()
	cfg.NumJobs = 64
	cfg.Seed = 5
	cfg.Pattern = trace.Poisson
	cfg.Rate = 40.0 / 3600 // 40 jobs/hour
	jobs, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %s (node 0 is a 0.4x straggler)\n", clus)
	fmt.Printf("workload: %d jobs, Poisson arrivals at 40 jobs/hour\n\n", len(jobs))

	opts := core.DefaultOptions()
	opts.Aging = 6 * 3600 // age-boost pending jobs under continuous load
	eng, err := sim.NewEngine(clus, core.New(opts), sim.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Online arrivals: hold the trace outside the engine and submit each
	// job only once simulated time reaches it, exactly what a long-lived
	// scheduler service sees. The engine never learns about a job before
	// the job "exists".
	backlog := append([]*job.Job(nil), jobs...)
	submitDue := func(now float64) {
		for len(backlog) > 0 && backlog[0].Arrival <= now {
			if err := eng.SubmitJob(backlog[0]); err != nil {
				log.Fatal(err)
			}
			backlog = backlog[1:]
		}
	}

	fmt.Println("live timeline (read from engine snapshots between steps):")
	submitDue(0)
	nextStatus := 0
	for eng.HasPendingEvents() || len(backlog) > 0 {
		if !eng.HasPendingEvents() {
			// Queue drained but jobs are still to come: hand the engine
			// the next arrival so it can jump the gap instead of the
			// example spinning through empty rounds.
			submitDue(backlog[0].Arrival)
			continue
		}
		if err := eng.ProcessNextEvent(); err != nil {
			log.Fatal(err)
		}
		submitDue(eng.Now())

		// Snapshots are immutable copies: cheap to take mid-run and safe
		// to keep while the engine advances underneath.
		if snap := eng.Snapshot(); snap.Round >= nextStatus {
			fmt.Printf("  t=%5.1fh  round %3d  active %2d  pending %2d  done %2d  free %2d/%2d GPUs\n",
				snap.Now/3600, snap.Round, len(snap.Active), snap.Pending,
				snap.Completed, snap.FreeGPUs(), snap.TotalGPUs)
			nextStatus += 20
		}
	}
	report, err := eng.Finish()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(report)
	fmt.Printf("avg queue delay: %.1f min\n", report.AvgQueueDelay()/60)
	fmt.Printf("JCT band: min %.2fh / median %.2fh / max %.2fh\n",
		report.MinJCT()/3600, report.MedianJCT()/3600, report.MaxJCT()/3600)

	// Completion timeline, like one Fig. 3b series.
	fmt.Println("\ncompletion timeline:")
	for i := 1; i <= 8; i++ {
		t := report.Makespan * float64(i) / 8
		fmt.Printf("  t=%6.1fh  %5.1f%% of jobs done\n", t/3600, 100*report.CompletionAt(t))
	}
}
