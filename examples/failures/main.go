// Failures: robustness under machine outages. A five-node V100 rack
// loses one node for several hours mid-run; the simulator hides the
// node from the scheduler, kills the round in progress on it, and Hadar
// re-places the affected gangs from their checkpoints. The event log
// shows the recovery play-by-play.
//
//	go run ./examples/failures
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	clus := cluster.Merge(
		cluster.Homogeneous(5, gpu.V100, 4),
		cluster.Homogeneous(3, gpu.P100, 4),
	)
	cfg := trace.DefaultConfig()
	cfg.NumJobs = 24
	cfg.Seed = 13
	cfg.WorkerChoices = []int{1, 2, 4}
	cfg.WorkerWeights = []float64{0.5, 0.3, 0.2}
	jobs, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	run := func(failures []sim.Failure, events *bytes.Buffer) float64 {
		opts := sim.DefaultOptions()
		opts.Failures = failures
		if events != nil {
			opts.EventLog = events
		}
		report, err := sim.Run(clus, jobs, core.New(core.DefaultOptions()), opts)
		if err != nil {
			log.Fatal(err)
		}
		return report.AvgJCT()
	}

	clean := run(nil, nil)
	var events bytes.Buffer
	// Node 2 (four V100s) dies 2 hours in, for 6 hours.
	outage := []sim.Failure{{Node: 2, Start: 2 * 3600, End: 8 * 3600}}
	faulty := run(outage, &events)

	fmt.Printf("cluster: %s\n", clus)
	fmt.Printf("avg JCT without outage: %.2f h\n", clean/3600)
	fmt.Printf("avg JCT with 6h outage: %.2f h (+%.1f%%)\n",
		faulty/3600, 100*(faulty-clean)/clean)

	parsed, err := sim.ReadEvents(&events)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noutage-window events:")
	shown := 0
	for _, e := range parsed {
		if e.Type == sim.EventNodeDown || e.Type == sim.EventNodeUp ||
			(e.Type == sim.EventRealloc && e.Time >= 2*3600 && e.Time <= 9*3600) {
			fmt.Printf("  t=%6.2fh round=%3d %-10s job=%d node=%d %s\n",
				e.Time/3600, e.Round, e.Type, e.Job, e.Node, e.Alloc)
			shown++
			if shown >= 15 {
				fmt.Println("  ...")
				break
			}
		}
	}
}
