// Livecluster: the paper's prototype architecture running live — worker
// agents serve RPC on loopback TCP (the paper uses gRPC on AWS; this
// reproduction uses stdlib net/rpc), and the Hadar scheduler drives
// them as a controller: launching gangs, preempting with checkpoints,
// and restarting on new placements. Time is scaled so the multi-hour
// Table III-style workload replays in a few seconds of wall clock.
//
//	go run ./examples/livecluster
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/rpccluster"
	"repro/internal/trace"
)

func main() {
	const timeScale = 36000 // 1 real second = 10 simulated hours

	// Start one worker agent per machine: the prototype's 8-GPU fleet
	// (2x T4, 2x K520, 2x K80, 2x V100), one agent per type pair.
	nodeTypes := []gpu.Type{gpu.T4, gpu.K520, gpu.K80, gpu.V100}
	var specs []rpccluster.NodeSpec
	for i, typ := range nodeTypes {
		w := rpccluster.NewWorker(i, 2, timeScale)
		h, err := rpccluster.Serve("127.0.0.1:0", w)
		if err != nil {
			log.Fatal(err)
		}
		defer h.Close()
		specs = append(specs, rpccluster.NodeSpec{
			Addr: h.Addr, GPU: typ, Devices: 2, Speed: 1,
		})
		fmt.Printf("worker %d (%s x2) listening on %s\n", i, typ, h.Addr)
	}

	// The controller embeds the Hadar scheduler and drives the agents.
	opts := rpccluster.DefaultOptions()
	opts.TimeScale = timeScale
	opts.UseModelCosts = true
	ctl, err := rpccluster.NewController(core.New(core.DefaultOptions()), specs, opts)
	if err != nil {
		log.Fatal(err)
	}
	defer ctl.Close()

	// A small mixed workload from the Table II catalog.
	var jobs []*job.Job
	for i, spec := range trace.Catalog() {
		j, err := trace.FromDemand(i, spec, 1+i%2, 0.4+0.4*float64(i), 0)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, j)
		fmt.Printf("submit %s: %d workers, %.0f iters\n", j.Name, j.Workers, j.TotalIters())
	}

	fmt.Println("\nscheduling live (1 wall-clock second = 10 simulated hours)...")
	report, err := ctl.Run(jobs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(report)
	for _, jr := range report.Jobs {
		fmt.Printf("  job %d (%s): start %5.1f min, finish %6.1f min, %d reallocations\n",
			jr.ID, jr.Model, jr.Start/60, jr.Finish/60, jr.Reallocations)
	}
	fmt.Printf("\ncontroller made %d decisions, avg %s each\n",
		report.Decisions, report.AvgDecisionTime())
}
