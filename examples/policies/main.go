// Policies: Hadar's optimization framework can express different
// scheduling objectives by swapping the utility function U_j(.)
// (Section III.A, "Expressing other scheduling policies"). This example
// runs the same workload under three objectives — average JCT,
// makespan, and finish-time fairness — and shows how the metrics shift.
//
//	go run ./examples/policies
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	clus := experiments.SimCluster()
	cfg := trace.DefaultConfig()
	cfg.NumJobs = 48
	cfg.Seed = 9
	jobs, err := trace.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	objectives := []struct {
		label   string
		utility core.Utility
	}{
		{"min average JCT", core.InverseJCT{}},
		{"min makespan", core.EffectiveThroughput{}},
		{"finish-time fairness", core.FinishTimeFairness{
			Jobs: len(jobs), TotalGPUs: clus.TotalGPUs()}},
	}

	fmt.Printf("%-22s %10s %12s %8s %8s\n",
		"objective", "avgJCT(h)", "makespan(h)", "avgFTF", "maxFTF")
	for _, obj := range objectives {
		opts := core.DefaultOptions()
		opts.Utility = obj.utility
		report, err := sim.Run(clus, jobs, core.New(opts), sim.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %10.2f %12.2f %8.2f %8.2f\n",
			obj.label, report.AvgJCT()/3600, report.Makespan/3600,
			report.AvgFTF(), report.MaxFTF())
	}
	fmt.Println("\nEach objective optimizes its own metric: the avg-JCT utility gives")
	fmt.Println("the lowest average completion time, the throughput utility the")
	fmt.Println("shortest makespan — same scheduler, different U_j(.).")
}
