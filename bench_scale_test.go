package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sched"
)

// scaleRoundPoints is the node-count sweep of the scalability suite: 60
// nodes is roughly the paper's testbed scale, 5000 a large production
// cluster. Each point carries two workload series: "prop" grows the
// pending queue with the cluster (a loaded cluster stays loaded as it
// grows), "fixed" holds the paper's 480-job backlog constant so the
// node-count term of the round cost is isolated.
var scaleRoundPoints = []struct {
	nodes int
	// large marks points skipped under -short / bench-smoke: a 1k- or
	// 5k-node round is seconds of setup, not smoke-test material.
	large bool
}{
	{nodes: 60},
	{nodes: 250},
	{nodes: 1000, large: true},
	{nodes: 5000, large: true},
}

// scaleJobsPerNode is the proportional series' load factor: 2 pending
// jobs per node keeps every cluster size oversubscribed (4 GPUs per
// node, multi-worker gangs) without making the 5000-node setup
// intractable.
const scaleJobsPerNode = 2

// scaleFixedJobs is the fixed-backlog series' queue length — the
// paper's full trace size.
const scaleFixedJobs = 480

// benchScaleContext builds a single-round context with `jobs` pending
// jobs over a `nodes`-node cluster of the paper's type mix.
func benchScaleContext(b *testing.B, nodes, jobs int) *sched.Context {
	b.Helper()
	ctx := benchSchedContext(b, jobs)
	ctx.Cluster = experiments.ScaleCluster(nodes)
	return ctx
}

// BenchmarkScaleRound measures one full Hadar scheduling round (queue
// ordering, price table, DP or greedy allocation, backfill) as the
// cluster grows from testbed to production scale. ns/op is the round
// latency; the nodes/gpus/jobs metrics let cmd/benchjson -scale-csv
// assemble results/fig7_scalability.csv without re-parsing benchmark
// names.
func BenchmarkScaleRound(b *testing.B) {
	run := func(b *testing.B, nodes, jobs int) {
		ctx := benchScaleContext(b, nodes, jobs)
		s := core.New(core.DefaultOptions())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.Schedule(ctx)
		}
		b.ReportMetric(float64(nodes), "nodes")
		b.ReportMetric(float64(ctx.Cluster.TotalGPUs()), "gpus")
		b.ReportMetric(float64(jobs), "jobs")
	}
	for _, p := range scaleRoundPoints {
		p := p
		b.Run(fmt.Sprintf("prop/nodes=%d", p.nodes), func(b *testing.B) {
			if p.large && testing.Short() {
				b.Skip("large-cluster point skipped under -short")
			}
			run(b, p.nodes, p.nodes*scaleJobsPerNode)
		})
	}
	for _, p := range scaleRoundPoints {
		p := p
		b.Run(fmt.Sprintf("fixed/nodes=%d", p.nodes), func(b *testing.B) {
			if p.large && testing.Short() {
				b.Skip("large-cluster point skipped under -short")
			}
			run(b, p.nodes, scaleFixedJobs)
		})
	}
}
