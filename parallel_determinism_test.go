package repro

import (
	"runtime"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/trace"
)

// hadarDigestChain drives the seed trace through a hadar scheduler built
// with opts, stepping the engine event by event and recording the
// engine's decision digest after every round, so two runs can be
// compared round for round rather than only at the end.
func hadarDigestChain(t *testing.T, opts core.Options, numJobs int) []uint64 {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.NumJobs = numJobs
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(jobs, func(i, k int) bool {
		if jobs[i].Arrival != jobs[k].Arrival {
			return jobs[i].Arrival < jobs[k].Arrival
		}
		return jobs[i].ID < jobs[k].ID
	})
	eng, err := sim.NewEngine(experiments.SimCluster(), core.New(opts), sim.ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if err := eng.SubmitJob(j); err != nil {
			t.Fatal(err)
		}
	}
	var chain []uint64
	last := eng.Digest()
	for eng.HasPendingEvents() {
		if err := eng.ProcessNextEvent(); err != nil {
			t.Fatal(err)
		}
		if d := eng.Digest(); d != last {
			chain = append(chain, d)
			last = d
		}
	}
	if _, err := eng.Finish(); err != nil {
		t.Fatal(err)
	}
	return chain
}

// TestParallelDPDigestChains is the end-to-end guarantee behind the
// sharded DP: the full seed-trace simulation produces a byte-identical
// per-round digest chain whether the DP runs sequentially or fans out
// across 2, 8, or GOMAXPROCS workers. DPJobLimit is raised so whole
// queues flow through the DP (the default limit routes large queues to
// the greedy path, which never shards), making this a direct exercise of
// the expand/fan-out/fold machinery on realistic round states. Run under
// -race via `make race`, this also proves the workers share nothing
// mutable.
func TestParallelDPDigestChains(t *testing.T) {
	core.PanicOnInconsistency = true
	numJobs := 96
	if testing.Short() {
		numJobs = 48
	}
	mkOpts := func(workers int) core.Options {
		o := core.DefaultOptions()
		o.DPJobLimit = 20
		o.DPWorkers = workers
		return o
	}
	baseline := hadarDigestChain(t, mkOpts(1), numJobs)
	if len(baseline) == 0 {
		t.Fatal("sequential run produced no round digests")
	}
	for _, w := range []int{2, 8, runtime.GOMAXPROCS(0)} {
		if w <= 1 {
			continue
		}
		chain := hadarDigestChain(t, mkOpts(w), numJobs)
		if len(chain) != len(baseline) {
			t.Fatalf("workers=%d produced %d round digests, sequential %d",
				w, len(chain), len(baseline))
		}
		for i := range chain {
			if chain[i] != baseline[i] {
				t.Fatalf("workers=%d digest chain diverges at round-digest %d: %#x vs %#x",
					w, i, chain[i], baseline[i])
			}
		}
	}
}

// TestParallelDPMatchesGoldenDigest pins the parallel path against the
// committed golden schedule: hadar with default options plus an explicit
// worker fan-out must reproduce the exact golden digest the sequential
// scheduler is pinned to in goldenDigests. Any divergence between the
// sharded and sequential searches fails here against a cross-commit
// constant, not just against a same-process baseline.
func TestParallelDPMatchesGoldenDigest(t *testing.T) {
	core.PanicOnInconsistency = true
	if testing.Short() {
		t.Skip("golden digest is pinned for the full 96-job short trace; skip under -short")
	}
	numJobs := 96
	opts := core.DefaultOptions()
	opts.DPWorkers = 8
	cfg := trace.DefaultConfig()
	cfg.NumJobs = numJobs
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := newDigestRecorder(core.New(opts))
	if _, err := sim.Run(experiments.SimCluster(), jobs, rec, sim.ValidatedOptions()); err != nil {
		t.Fatal(err)
	}
	want := goldenDigests["hadar"][numJobs]
	if rec.sum != want {
		t.Errorf("parallel hadar digest %#x, golden %#x — the sharded DP changed the schedule",
			rec.sum, want)
	}
}
