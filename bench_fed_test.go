package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/sim"
	"repro/internal/trace"
)

// BenchmarkFederationStep measures one ProcessNextEvent call on a
// federation — pick the member with the earliest pending event, advance
// it — at 1, 4, and 16 members. Each member is the paper's 15-node
// simulated cluster with its own Hadar instance; a 64-job trace is
// routed through the least-queue front door. The 1-member point is the
// federation's wrapper overhead over BenchmarkEngineStep; the larger
// points show how the shared-clock loop scales with member count.
func BenchmarkFederationStep(b *testing.B) {
	cfg := trace.DefaultConfig()
	cfg.NumJobs = 64
	jobs, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, members := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			newFed := func() *federation.Federation {
				configs := make([]federation.MemberConfig, members)
				for i := range configs {
					configs[i] = federation.MemberConfig{
						Name:      fmt.Sprintf("region%d", i),
						Cluster:   experiments.SimCluster(),
						Scheduler: core.New(core.DefaultOptions()),
						Sim:       sim.DefaultOptions(),
					}
				}
				router, err := federation.NewRouter("least-queue")
				if err != nil {
					b.Fatal(err)
				}
				fed, err := federation.New(configs, router, federation.Options{})
				if err != nil {
					b.Fatal(err)
				}
				for _, j := range jobs {
					if err := fed.SubmitJob(j); err != nil {
						b.Fatal(err)
					}
				}
				return fed
			}
			fed := newFed()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !fed.HasPendingEvents() {
					b.StopTimer()
					fed = newFed()
					b.StartTimer()
				}
				if err := fed.ProcessNextEvent(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
