package repro

import (
	"fmt"
	"testing"

	"repro/internal/allox"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gavel"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tiresias"
	"repro/internal/trace"
	"repro/internal/yarncs"
)

// TestSchedulerDeterminism runs the seed Philly-like trace through every
// scheduler twice and asserts the per-job schedules are identical. This
// is the regression guard for the hash-keyed DP memoization: Hadar's
// dual subroutine memoizes on the 64-bit free-state hash, and any
// nondeterminism there (map iteration order, hash instability) would
// show up as run-to-run schedule drift long before it corrupted a
// result enough to fail a coarser metric check.
func TestSchedulerDeterminism(t *testing.T) {
	core.PanicOnInconsistency = true
	numJobs := 480
	if testing.Short() {
		numJobs = 96
	}
	schedulers := map[string]func() sched.Scheduler{
		"hadar":           func() sched.Scheduler { return core.New(core.DefaultOptions()) },
		"gavel":           func() sched.Scheduler { return gavel.New(gavel.Options{}) },
		"tiresias":        func() sched.Scheduler { return tiresias.New(tiresias.DefaultOptions()) },
		"yarn-cs":         func() sched.Scheduler { return yarncs.New() },
		"allox":           func() sched.Scheduler { return allox.New() },
		"ref-srtf-sticky": func() sched.Scheduler { return policy.New(policy.SRTF, true) },
	}
	for name, mk := range schedulers {
		mk := mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			first := scheduleFingerprint(t, mk(), numJobs)
			second := scheduleFingerprint(t, mk(), numJobs)
			if len(first) != len(second) {
				t.Fatalf("runs completed %d vs %d jobs", len(first), len(second))
			}
			for i := range first {
				if first[i] != second[i] {
					t.Errorf("job schedule differs between runs:\nrun 1: %s\nrun 2: %s",
						first[i], second[i])
				}
			}
		})
	}
}

// scheduleFingerprint simulates a freshly generated seed trace under a
// fresh scheduler and renders each job's schedule as one comparable
// line. Trace generation is seeded, so two calls see identical inputs.
func scheduleFingerprint(t *testing.T, s sched.Scheduler, numJobs int) []string {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.NumJobs = numJobs
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run(experiments.SimCluster(), jobs, s, sim.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		out = append(out, fmt.Sprintf("job %d: start=%.9f finish=%.9f reallocs=%d",
			j.ID, j.Start, j.Finish, j.Reallocations))
	}
	return out
}
