package repro

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"

	"repro/internal/allox"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/gavel"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/tiresias"
	"repro/internal/trace"
	"repro/internal/yarncs"
)

// TestSchedulerDeterminism runs the seed Philly-like trace through every
// scheduler twice and asserts the per-job schedules are identical. This
// is the regression guard for the hash-keyed DP memoization: Hadar's
// dual subroutine memoizes on the 64-bit free-state hash, and any
// nondeterminism there (map iteration order, hash instability) would
// show up as run-to-run schedule drift long before it corrupted a
// result enough to fail a coarser metric check.
func TestSchedulerDeterminism(t *testing.T) {
	core.PanicOnInconsistency = true
	numJobs := 480
	if testing.Short() {
		numJobs = 96
	}
	schedulers := map[string]func() sched.Scheduler{
		"hadar":           func() sched.Scheduler { return core.New(core.DefaultOptions()) },
		"gavel":           func() sched.Scheduler { return gavel.New(gavel.Options{}) },
		"tiresias":        func() sched.Scheduler { return tiresias.New(tiresias.DefaultOptions()) },
		"yarn-cs":         func() sched.Scheduler { return yarncs.New() },
		"allox":           func() sched.Scheduler { return allox.New() },
		"ref-srtf-sticky": func() sched.Scheduler { return policy.New(policy.SRTF, true) },
	}
	for name, mk := range schedulers {
		mk := mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			first := scheduleFingerprint(t, mk(), numJobs)
			second := scheduleFingerprint(t, mk(), numJobs)
			if len(first) != len(second) {
				t.Fatalf("runs completed %d vs %d jobs", len(first), len(second))
			}
			for i := range first {
				if first[i] != second[i] {
					t.Errorf("job schedule differs between runs:\nrun 1: %s\nrun 2: %s",
						first[i], second[i])
				}
			}
		})
	}
}

// scheduleFingerprint simulates a freshly generated seed trace under a
// fresh scheduler and renders each job's schedule as one comparable
// line. Trace generation is seeded, so two calls see identical inputs.
func scheduleFingerprint(t *testing.T, s sched.Scheduler, numJobs int) []string {
	t.Helper()
	cfg := trace.DefaultConfig()
	cfg.NumJobs = numJobs
	jobs, err := trace.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run(experiments.SimCluster(), jobs, s, sim.ValidatedOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		out = append(out, fmt.Sprintf("job %d: start=%.9f finish=%.9f reallocs=%d",
			j.ID, j.Start, j.Finish, j.Reallocations))
	}
	return out
}

// digestRecorder wraps a scheduler and folds every round's canonical
// decisions into an FNV-64a digest: round index, then each allocated
// job's ID and its sorted (node, type, count) placements. Only integer
// decision data enters the hash, so the digest is stable across
// platforms and Go versions as long as the schedule itself is.
type digestRecorder struct {
	inner sched.Scheduler
	sum   uint64
}

func newDigestRecorder(s sched.Scheduler) *digestRecorder {
	return &digestRecorder{inner: s}
}

func (d *digestRecorder) Name() string { return d.inner.Name() }

func (d *digestRecorder) Schedule(ctx *sched.Context) map[int]cluster.Alloc {
	out := d.inner.Schedule(ctx)
	h := fnv.New64a()
	write := func(v int) {
		var b [8]byte
		u := uint64(v)
		for i := range b {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	write(ctx.Round)
	ids := make([]int, 0, len(out))
	for id, a := range out {
		if a.Workers() > 0 {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		write(id)
		for _, p := range out[id].Canonical() {
			write(p.Node)
			write(int(p.Type))
			write(p.Count)
		}
	}
	// Chain rounds so reordering two rounds cannot cancel out.
	d.sum = d.sum*1099511628211 + h.Sum64()
	return out
}

// goldenDigests pins the exact schedule every policy produces on the
// seed trace. A change here means the policy's decisions changed — that
// can be intentional (algorithm work) but must never happen as a side
// effect of a refactor. On an intentional change, re-run the test: the
// failure message prints the observed digest to paste in here.
var goldenDigests = map[string]map[int]uint64{
	"hadar": {
		96:  0x21dcfe1575c93546,
		480: 0x7c16584a99c62b3b,
	},
	"gavel": {
		96:  0xab71ad9308963fc,
		480: 0xbe27a927b5c221db,
	},
	"tiresias": {
		96:  0x929fd660b56636a4,
		480: 0x6573f9a49b8fe1d8,
	},
	"yarn-cs": {
		96:  0x12a7dd07cabc1fcb,
		480: 0xbd66845097d08efa,
	},
	"allox": {
		96:  0xb71ee4fe0857b27a,
		480: 0x4598ac0671e4a3b7,
	},
}

// TestGoldenScheduleDigests replays the seed trace under every policy
// and compares the per-round allocation digest against the checked-in
// golden value. Unlike TestSchedulerDeterminism (same-process
// run-to-run drift), this catches cross-commit drift: an accidental
// behaviour change in any scheduler or in the simulator's round
// protocol fails here even if the new behaviour is itself
// deterministic.
func TestGoldenScheduleDigests(t *testing.T) {
	core.PanicOnInconsistency = true
	numJobs := 480
	if testing.Short() {
		numJobs = 96
	}
	schedulers := map[string]func() sched.Scheduler{
		"hadar":    func() sched.Scheduler { return core.New(core.DefaultOptions()) },
		"gavel":    func() sched.Scheduler { return gavel.New(gavel.Options{}) },
		"tiresias": func() sched.Scheduler { return tiresias.New(tiresias.DefaultOptions()) },
		"yarn-cs":  func() sched.Scheduler { return yarncs.New() },
		"allox":    func() sched.Scheduler { return allox.New() },
	}
	for name, mk := range schedulers {
		mk := mk
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := trace.DefaultConfig()
			cfg.NumJobs = numJobs
			jobs, err := trace.Generate(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rec := newDigestRecorder(mk())
			if _, err := sim.Run(experiments.SimCluster(), jobs, rec, sim.ValidatedOptions()); err != nil {
				t.Fatal(err)
			}
			want, ok := goldenDigests[name][numJobs]
			if !ok {
				t.Fatalf("no golden digest for %s with %d jobs; observed %#x", name, numJobs, rec.sum)
			}
			if rec.sum != want {
				t.Errorf("schedule digest %#x, golden %#x — the %s schedule changed; "+
					"if intentional, update goldenDigests", rec.sum, want, name)
			}
		})
	}
}
