// Command hadard runs the scheduler as a long-lived service: a
// steppable simulation engine owned by a single goroutine, fronted by
// a bounded admission queue and an HTTP control API.
//
// Usage:
//
//	hadard [-scheduler hadar] [-cluster sim|physical] [-addr :8080]
//	       [-clock virtual|wall] [-interval 50ms] [-queue 64]
//	       [-round 6] [-validate=true]
//	       [-clusters N] [-router round-robin|least-queue|affinity|price]
//	       [-wal DIR] [-recover] [-fsync always|group|off]
//	       [-fsync-interval 2ms] [-checkpoint-every 256]
//
// With -clusters N (N > 1) the daemon runs a federation: N independent
// member clusters, each with its own scheduler instance, advanced on
// one shared clock, with the -router policy picking the owning member
// for every submission at the front door. The same HTTP surface is
// served; job queries additionally report the owning member. -wal is
// single-cluster only.
//
// The HTTP surface combines the dashboard (/, /jobs, /api/summary)
// with the live control API:
//
//	POST   /api/jobs      {"model": "ResNet-50", "workers": 2, "gpu_hours": 4}
//	GET    /api/jobs/{id} lifecycle phase + live/final detail
//	DELETE /api/jobs/{id} cancel a pending or running job
//	GET    /api/snapshot  full cluster snapshot + admission stats
//
// With -wal DIR every accepted mutation is journaled before its HTTP
// response, and -recover resumes from the journal after a crash: the
// engine is rebuilt from the latest checkpoint plus a replay of the
// journal tail, with every replayed round digest-verified against the
// original run. SIGINT/SIGTERM trigger a graceful shutdown — in-flight
// HTTP requests drain, the queue is rejected-and-emptied, the journal
// is flushed, and a final checkpoint is written, so the next -recover
// replays nothing.
//
// The HADARD_CRASH_AFTER_BYTES environment variable arms a crash
// failpoint for the chaos harness (cmd/crashchaos): the journal append
// that would cross that byte offset is torn partway through its frame
// and the process exits hard — a SIGKILL landing inside write(2).
//
// Smoke mode (-smoke) swaps the HTTP server for an internal closed-loop
// load drive: it generates a seeded workload, pushes it through the
// admission queue as fast as the engine absorbs it, waits for every
// accepted job to finish, and exits non-zero unless the run was clean
// (zero invariant violations, nonzero accepted submissions). CI runs
// this under -race.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/allox"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/federation"
	"repro/internal/loadgen"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/wal"
	"repro/internal/web"
)

func main() {
	var (
		schedName  = flag.String("scheduler", "hadar", "scheduler: hadar, hadar-makespan, gavel, tiresias, yarn-cs, allox, ref-fifo, ref-srtf")
		clusterSel = flag.String("cluster", "sim", "cluster config: sim (60 GPUs) or physical (8 GPUs)")
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		clockSel   = flag.String("clock", "virtual", "round pacing: virtual (as fast as possible) or wall")
		interval   = flag.Duration("interval", 50*time.Millisecond, "wall time per round boundary in -clock wall mode")
		queue      = flag.Int("queue", 64, "admission queue depth (backpressure beyond this)")
		roundMin   = flag.Float64("round", 6, "scheduling round length (simulated minutes)")
		validate   = flag.Bool("validate", true, "run the invariant oracle on every round")
		addrFile   = flag.String("addr-file", "", "write the bound listen address to this file (use with -addr 127.0.0.1:0)")
		drainWait  = flag.Duration("drain", 5*time.Second, "graceful-shutdown deadline for in-flight HTTP requests")

		clusters  = flag.Int("clusters", 1, "number of federated member clusters (1 = single-cluster mode)")
		routerSel = flag.String("router", "least-queue", "federation routing policy: round-robin, least-queue, affinity, price")

		walDir     = flag.String("wal", "", "write-ahead journal directory (empty = no durability)")
		recoverWAL = flag.Bool("recover", false, "resume from the journal and checkpoint in -wal")
		fsyncSel   = flag.String("fsync", "group", "journal fsync policy: always, group, or off")
		fsyncEvery = flag.Duration("fsync-interval", 2*time.Millisecond, "longest a verdict waits for its group fsync (-fsync group)")
		ckptEvery  = flag.Int("checkpoint-every", 256, "journal records between engine checkpoints")

		smoke        = flag.Bool("smoke", false, "run the internal load-generator smoke test and exit")
		smokeJobs    = flag.Int("smoke-jobs", 120, "smoke: number of jobs to generate")
		smokeModel   = flag.String("smoke-model", "bursty", "smoke: arrival model poisson, diurnal, or bursty")
		smokeRate    = flag.Float64("smoke-rate", 0.05, "smoke: mean arrival rate (jobs per virtual second)")
		smokeSeed    = flag.Int64("smoke-seed", 1, "smoke: workload seed")
		smokeTimeout = flag.Duration("smoke-timeout", 120*time.Second, "smoke: wall-clock budget for the whole run")
	)
	flag.Parse()

	s, err := pickScheduler(*schedName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadard: %v\n", err)
		os.Exit(2)
	}
	c, err := pickCluster(*clusterSel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadard: %v\n", err)
		os.Exit(2)
	}

	simOpts := sim.DefaultOptions()
	simOpts.RoundLength = *roundMin * 60
	simOpts.Validate = *validate
	opts := service.Options{
		Sim:           simOpts,
		QueueDepth:    *queue,
		RoundInterval: *interval,
	}
	if *clockSel == "wall" {
		opts.Clock = service.WallClock
	} else if *clockSel != "virtual" {
		fmt.Fprintf(os.Stderr, "hadard: unknown clock %q\n", *clockSel)
		os.Exit(2)
	}
	if *walDir == "" && *recoverWAL {
		fmt.Fprintln(os.Stderr, "hadard: -recover requires -wal")
		os.Exit(2)
	}
	if *clusters < 1 {
		fmt.Fprintf(os.Stderr, "hadard: -clusters must be at least 1, got %d\n", *clusters)
		os.Exit(2)
	}
	if *clusters > 1 && *walDir != "" {
		fmt.Fprintln(os.Stderr, "hadard: -wal is not supported with -clusters > 1 (the journal covers a single engine)")
		os.Exit(2)
	}
	if *walDir != "" {
		pol, err := wal.ParsePolicy(*fsyncSel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hadard: %v\n", err)
			os.Exit(2)
		}
		opts.WAL = &service.WALConfig{
			Dir:             *walDir,
			Policy:          pol,
			GroupInterval:   *fsyncEvery,
			CheckpointEvery: *ckptEvery,
			Recover:         *recoverWAL,
			FailPoint:       crashFailPoint(),
		}
	}

	// Build either the single-engine service or the federated front
	// door; everything past this point (smoke, HTTP serving, graceful
	// shutdown) is mode-agnostic.
	var (
		handler http.Handler
		stopSvc func() error
		smokeFn func() int
		banner  string
	)
	if *clusters > 1 {
		router, err := federation.NewRouter(*routerSel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hadard: %v\n", err)
			os.Exit(2)
		}
		members := make([]federation.MemberConfig, *clusters)
		for i := range members {
			mc, err := pickCluster(*clusterSel)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hadard: %v\n", err)
				os.Exit(2)
			}
			ms, err := pickScheduler(*schedName)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hadard: %v\n", err)
				os.Exit(2)
			}
			members[i] = federation.MemberConfig{
				Name:      fmt.Sprintf("region%d", i),
				Cluster:   mc,
				Scheduler: ms,
				Sim:       simOpts,
			}
		}
		fsvc, err := service.NewFed(members, router, service.FedOptions{
			Federation:    federation.Options{Validate: *validate},
			QueueDepth:    *queue,
			Clock:         opts.Clock,
			RoundInterval: *interval,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hadard: %v\n", err)
			os.Exit(1)
		}
		fsvc.Start()
		handler = web.NewFedServer(fsvc).Handler()
		stopSvc = func() error { _, err := fsvc.Stop(); return err }
		smokeFn = func() int {
			return runFedSmoke(fsvc, *smokeJobs, *smokeModel, *smokeRate, *smokeSeed, *smokeTimeout)
		}
		banner = fmt.Sprintf("hadard: %s federation — %d x %s clusters (%d GPUs total), %s router, %s clock, queue depth %d",
			s.Name(), *clusters, *clusterSel, *clusters*c.TotalGPUs(), router.Name(), *clockSel, *queue)
	} else {
		svc, err := service.New(c, s, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hadard: %v\n", err)
			os.Exit(1)
		}
		if r := svc.Recovery(); r != nil {
			doc, _ := json.Marshal(r)
			fmt.Printf("hadard: recovered: %s\n", doc)
		}
		svc.Start()
		handler = web.NewLiveServer(svc).Handler()
		stopSvc = func() error { _, err := svc.Stop(); return err }
		smokeFn = func() int {
			return runSmoke(svc, *smokeJobs, *smokeModel, *smokeRate, *smokeSeed, *smokeTimeout)
		}
		banner = fmt.Sprintf("hadard: %s on %s cluster (%d GPUs), %s clock, queue depth %d",
			s.Name(), *clusterSel, c.TotalGPUs(), *clockSel, *queue)
	}

	if *smoke {
		os.Exit(smokeFn())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadard: %v\n", err)
		os.Exit(1)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "hadard: %v\n", err)
			os.Exit(1)
		}
	}
	fmt.Printf("%s — listening on %s\n", banner, ln.Addr())

	srv := &http.Server{Handler: handler}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "hadard: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stopSignals() // a second signal kills immediately

	// Graceful shutdown: drain in-flight HTTP requests, then stop the
	// service — which rejects and empties the admission queue, flushes
	// deferred group commits, writes a final checkpoint, and closes the
	// journal. After this a -recover restart replays nothing.
	fmt.Println("hadard: shutdown signal — draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "hadard: http drain: %v\n", err)
	}
	if err := stopSvc(); err != nil {
		fmt.Fprintf(os.Stderr, "hadard: stop: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("hadard: clean shutdown")
}

// crashFailPoint arms the chaos harness's mid-append kill. When
// HADARD_CRASH_AFTER_BYTES=N is set, the journal append that would
// cross byte offset N is torn at a threshold-derived position inside
// the frame and the process exits hard a moment later, emulating a
// SIGKILL that lands inside write(2). The short grace lets the torn
// bytes reach the file before the exit.
func crashFailPoint() wal.FailPoint {
	env := os.Getenv("HADARD_CRASH_AFTER_BYTES")
	if env == "" {
		return nil
	}
	after, err := strconv.ParseInt(env, 10, 64)
	if err != nil || after < 0 {
		fmt.Fprintf(os.Stderr, "hadard: bad HADARD_CRASH_AFTER_BYTES %q\n", env)
		os.Exit(2)
	}
	tripped := make(chan struct{})
	go func() {
		<-tripped
		time.Sleep(10 * time.Millisecond)
		os.Exit(137)
	}()
	return func(offset int64, frame []byte) int {
		if offset+int64(len(frame)) <= after {
			return -1
		}
		close(tripped)
		return int(after % int64(len(frame)+1))
	}
}

func pickScheduler(name string) (sched.Scheduler, error) {
	switch name {
	case "hadar":
		return experiments.NewHadar(), nil
	case "hadar-makespan":
		return experiments.NewHadarMakespan(), nil
	case "gavel":
		return experiments.NewGavel(), nil
	case "tiresias":
		return experiments.NewTiresias(), nil
	case "yarn-cs":
		return experiments.NewYARNCS(), nil
	case "allox":
		return allox.New(), nil
	case "ref-fifo":
		return policy.New(policy.FIFO, true), nil
	case "ref-srtf":
		return policy.New(policy.SRTF, true), nil
	}
	return nil, fmt.Errorf("unknown scheduler %q", name)
}

func pickCluster(name string) (*cluster.Cluster, error) {
	switch name {
	case "sim":
		return experiments.SimCluster(), nil
	case "physical":
		return experiments.PhysicalCluster(), nil
	}
	return nil, fmt.Errorf("unknown cluster %q", name)
}

// smokeReport is the JSON document the smoke run prints for CI logs.
type smokeReport struct {
	Scheduler   string         `json:"scheduler"`
	Model       string         `json:"model"`
	Drive       loadgen.Result `json:"drive"`
	SubmitRate  float64        `json:"sustained_submissions_per_s"`
	Stats       service.Stats  `json:"stats"`
	Completed   int            `json:"completed"`
	SimSeconds  float64        `json:"simulated_seconds"`
	WallSeconds float64        `json:"wall_seconds"`
}

// runSmoke drives a seeded workload through the service, waits for
// completion, and verifies the run was clean. Returns the process exit
// code.
func runSmoke(svc *service.Service, jobs int, modelName string, rate float64, seed int64, budget time.Duration) int {
	var model loadgen.Model
	switch modelName {
	case "poisson":
		model = loadgen.Poisson
	case "diurnal":
		model = loadgen.Diurnal
	case "bursty":
		model = loadgen.Bursty
	default:
		fmt.Fprintf(os.Stderr, "hadard: unknown smoke model %q\n", modelName)
		return 2
	}
	cfg := loadgen.Config{
		Model:     model,
		Jobs:      jobs,
		Seed:      seed,
		Rate:      rate,
		Amplitude: 0.5,
		BurstSize: 16,
		BurstGap:  3600,
	}
	trace, err := loadgen.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadard: smoke: %v\n", err)
		return 1
	}
	start := time.Now()
	res, err := loadgen.Drive(svc, trace, loadgen.DriveOptions{MaxDuration: budget})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadard: smoke: drive failed: %v\n", err)
		return 1
	}

	// Wait until every accepted job reaches a terminal phase, within
	// the wall budget.
	deadline := start.Add(budget)
	for {
		snap := svc.Snapshot()
		if snap.Completed+snap.Cancelled >= res.Submitted {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "hadard: smoke: %d of %d jobs unfinished after %v\n",
				res.Submitted-snap.Completed-snap.Cancelled, res.Submitted, budget)
			return 1
		}
		time.Sleep(20 * time.Millisecond)
	}

	report, err := svc.Stop()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadard: smoke: invariant violation or engine failure: %v\n", err)
		return 1
	}
	if res.Submitted == 0 {
		fmt.Fprintln(os.Stderr, "hadard: smoke: zero accepted submissions")
		return 1
	}

	snap := svc.Snapshot()
	out := smokeReport{
		Scheduler:   report.Scheduler,
		Model:       model.String(),
		Drive:       res,
		SubmitRate:  res.PerSecond(),
		Stats:       svc.Stats(),
		Completed:   snap.Completed,
		SimSeconds:  snap.Now,
		WallSeconds: time.Since(start).Seconds(),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "hadard: smoke: %v\n", err)
		return 1
	}
	fmt.Printf("hadard: smoke OK: %d jobs accepted, %d completed, %d rounds, 0 invariant violations\n",
		res.Submitted, snap.Completed, svc.Stats().Rounds)
	return 0
}

// runFedSmoke is runSmoke against the federated front door: the same
// seeded workload drives the router and the shared-clock loop, waits
// for every accepted job to reach a terminal phase on its owning
// member, and fails on any member-level or federation-level invariant
// violation.
func runFedSmoke(svc *service.FedService, jobs int, modelName string, rate float64, seed int64, budget time.Duration) int {
	var model loadgen.Model
	switch modelName {
	case "poisson":
		model = loadgen.Poisson
	case "diurnal":
		model = loadgen.Diurnal
	case "bursty":
		model = loadgen.Bursty
	default:
		fmt.Fprintf(os.Stderr, "hadard: unknown smoke model %q\n", modelName)
		return 2
	}
	cfg := loadgen.Config{
		Model:     model,
		Jobs:      jobs,
		Seed:      seed,
		Rate:      rate,
		Amplitude: 0.5,
		BurstSize: 16,
		BurstGap:  3600,
	}
	trace, err := loadgen.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadard: smoke: %v\n", err)
		return 1
	}
	start := time.Now()
	res, err := loadgen.Drive(svc, trace, loadgen.DriveOptions{MaxDuration: budget})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadard: smoke: drive failed: %v\n", err)
		return 1
	}

	deadline := start.Add(budget)
	for {
		snap := svc.Snapshot()
		if snap.Completed+snap.Cancelled >= res.Submitted {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintf(os.Stderr, "hadard: smoke: %d of %d jobs unfinished after %v\n",
				res.Submitted-snap.Completed-snap.Cancelled, res.Submitted, budget)
			return 1
		}
		time.Sleep(20 * time.Millisecond)
	}

	report, err := svc.Stop()
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadard: smoke: invariant violation or member failure: %v\n", err)
		return 1
	}
	if res.Submitted == 0 {
		fmt.Fprintln(os.Stderr, "hadard: smoke: zero accepted submissions")
		return 1
	}

	snap := svc.Snapshot()
	out := smokeReport{
		Scheduler:   report.Merged.Scheduler,
		Model:       model.String(),
		Drive:       res,
		SubmitRate:  res.PerSecond(),
		Stats:       svc.Stats(),
		Completed:   snap.Completed,
		SimSeconds:  snap.Now,
		WallSeconds: time.Since(start).Seconds(),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "hadard: smoke: %v\n", err)
		return 1
	}
	perMember := make([]string, 0, len(snap.Members))
	for i := range snap.Members {
		perMember = append(perMember,
			fmt.Sprintf("%s=%d", snap.Members[i].Name, snap.Members[i].Snap.Completed))
	}
	fmt.Printf("hadard: fed-smoke OK: %d jobs accepted, %d completed (%s), %d boundaries, 0 invariant violations\n",
		res.Submitted, snap.Completed, strings.Join(perMember, " "), svc.Stats().Rounds)
	return 0
}
