package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	e, ok := parseLine("BenchmarkEngineStep-8 \t     4096\t    271234 ns/op\t   24265 B/op\t     538 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if e.Op != "EngineStep" || e.Iterations != 4096 || e.NsPerOp != 271234 {
		t.Errorf("parsed %+v", e)
	}
	if e.BytesPerOp == nil || *e.BytesPerOp != 24265 || e.AllocsPerOp == nil || *e.AllocsPerOp != 538 {
		t.Errorf("memory stats not parsed: %+v", e)
	}

	e, ok = parseLine("BenchmarkSimulate480Jobs-8   1  5e+09 ns/op  3.21 avgJCT-h")
	if !ok || e.Metrics["avgJCT-h"] != 3.21 {
		t.Errorf("custom metric not parsed: %+v ok=%v", e, ok)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t12.3s",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-result line %q parsed as a benchmark", line)
		}
	}
}

func TestConvertTeesAndCollects(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkDPAllocate-8   100   11000 ns/op   123 B/op   45 allocs/op",
		"BenchmarkGreedyAllocate-8   200   5000 ns/op",
		"PASS",
	}, "\n")
	var out strings.Builder
	entries, err := convert(strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Op != "DPAllocate" || entries[1].Op != "GreedyAllocate" {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[1].BytesPerOp != nil {
		t.Error("B/op invented for a line without -benchmem columns")
	}
	if !strings.Contains(out.String(), "goos: linux") || !strings.Contains(out.String(), "PASS") {
		t.Error("input not teed through to output")
	}
}
