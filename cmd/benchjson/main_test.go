package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	e, ok := parseLine("BenchmarkEngineStep-8 \t     4096\t    271234 ns/op\t   24265 B/op\t     538 allocs/op")
	if !ok {
		t.Fatal("benchmark line not recognized")
	}
	if e.Op != "EngineStep" || e.Iterations != 4096 || e.NsPerOp != 271234 {
		t.Errorf("parsed %+v", e)
	}
	if e.BytesPerOp == nil || *e.BytesPerOp != 24265 || e.AllocsPerOp == nil || *e.AllocsPerOp != 538 {
		t.Errorf("memory stats not parsed: %+v", e)
	}

	e, ok = parseLine("BenchmarkSimulate480Jobs-8   1  5e+09 ns/op  3.21 avgJCT-h")
	if !ok || e.Metrics["avgJCT-h"] != 3.21 {
		t.Errorf("custom metric not parsed: %+v ok=%v", e, ok)
	}

	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trepro\t12.3s",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("non-result line %q parsed as a benchmark", line)
		}
	}
}

func TestConvertTeesAndCollects(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"BenchmarkDPAllocate-8   100   11000 ns/op   123 B/op   45 allocs/op",
		"BenchmarkGreedyAllocate-8   200   5000 ns/op",
		"PASS",
	}, "\n")
	var out strings.Builder
	entries, err := convert(strings.NewReader(in), &out)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Op != "DPAllocate" || entries[1].Op != "GreedyAllocate" {
		t.Fatalf("entries = %+v", entries)
	}
	if entries[1].BytesPerOp != nil {
		t.Error("B/op invented for a line without -benchmem columns")
	}
	if !strings.Contains(out.String(), "goos: linux") || !strings.Contains(out.String(), "PASS") {
		t.Error("input not teed through to output")
	}
}

func TestCheckRequired(t *testing.T) {
	entries := []entry{{Op: "DPAllocate"}, {Op: "ScaleRound/prop/nodes=60"}}
	if err := checkRequired(entries, "DPAllocate,ScaleRound/prop/nodes=60"); err != nil {
		t.Errorf("present ops reported missing: %v", err)
	}
	if err := checkRequired(entries, "DPAllocate,EngineStep"); err == nil {
		t.Error("missing op EngineStep not reported")
	}
	if err := checkRequired(entries, ""); err != nil {
		t.Errorf("empty requirement errored: %v", err)
	}
}

func TestCheckRegression(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "baseline.json")
	if err := os.WriteFile(base, []byte(`[{"op":"DPAllocate","iterations":100,"ns_per_op":1000}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	ok := []entry{{Op: "DPAllocate", NsPerOp: 1100}}
	if err := checkRegression(ok, base, "DPAllocate", 25); err != nil {
		t.Errorf("+10%% flagged at a 25%% limit: %v", err)
	}
	bad := []entry{{Op: "DPAllocate", NsPerOp: 1500}}
	if err := checkRegression(bad, base, "DPAllocate", 25); err == nil {
		t.Error("+50% regression not flagged at a 25% limit")
	}
	if err := checkRegression(ok, base, "EngineStep", 25); err == nil {
		t.Error("op absent from baseline not reported")
	}
	if err := checkRegression(ok, filepath.Join(dir, "nope.json"), "DPAllocate", 25); err == nil {
		t.Error("missing baseline file not reported")
	}
}

func TestScaleRowsAndMerge(t *testing.T) {
	entries := []entry{
		{Op: "DPAllocate", NsPerOp: 1000},
		{Op: "ScaleRound/fixed/nodes=250", NsPerOp: 1.4e6,
			Metrics: map[string]float64{"nodes": 250, "gpus": 1000, "jobs": 480}},
		{Op: "ScaleRound/prop/nodes=60", NsPerOp: 4e5,
			Metrics: map[string]float64{"nodes": 60, "gpus": 240, "jobs": 120}},
	}
	rows := scaleRows(entries)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "nodes-fixed" || rows[0][1] != "250" || rows[0][3] != "480" || rows[0][4] != "1400" {
		t.Errorf("fixed row = %v", rows[0])
	}
	if rows[1][0] != "nodes-prop" || rows[1][1] != "60" || rows[1][5] != "" {
		t.Errorf("prop row = %v", rows[1])
	}

	dir := t.TempDir()
	file := filepath.Join(dir, "fig7.csv")
	seed := strings.Join([]string{
		strings.Join(scaleCSVHeader, ","),
		"jobs-sweep,15,60,32,135,282",
		"nodes-prop,9999,1,1,1,", // stale bench row: must be replaced
	}, "\n") + "\n"
	if err := os.WriteFile(file, []byte(seed), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mergeScaleCSV(file, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	got := string(data)
	if !strings.Contains(got, "jobs-sweep,15,60,32,135,282") {
		t.Errorf("jobs-sweep series not preserved:\n%s", got)
	}
	if strings.Contains(got, "9999") {
		t.Errorf("stale nodes-prop row survived the merge:\n%s", got)
	}
	if !strings.Contains(got, "nodes-prop,60,240,120,400,") {
		t.Errorf("new prop row missing:\n%s", got)
	}
	if err := mergeScaleCSV(file, nil); err == nil {
		t.Error("empty merge (no ScaleRound entries) not reported")
	}
}
