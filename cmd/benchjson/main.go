// Command benchjson converts `go test -bench -benchmem` text output
// into a machine-readable JSON benchmark report.
//
// It reads the benchmark run from stdin, echoes every line through to
// stdout unchanged (so the pipeline stays readable in a terminal or CI
// log), and writes the parsed entries — op name, iterations, ns/op,
// B/op, allocs/op, plus any custom b.ReportMetric units — to the file
// named by -o. It exits nonzero if no benchmark lines were found, so a
// misspelled -bench pattern fails the make target instead of silently
// producing an empty report.
//
// Beyond the JSON report it can also gate and post-process a run:
//
//   - -require op1,op2 fails the run unless every named op is present,
//     so a renamed benchmark cannot silently drop out of the report.
//   - -baseline FILE -regress-op OP -regress-pct N fails if OP's ns/op
//     regressed more than N percent against the committed baseline
//     report.
//   - -scale-csv FILE merges the ScaleRound/... sweep entries into the
//     scalability CSV (series nodes-prop / nodes-fixed), preserving any
//     rows of other series already in the file (the jobs-sweep series
//     written by cmd/experiments).
//
// Usage:
//
//	go test -run='^$' -bench=... -benchmem . | go run ./cmd/benchjson -o BENCH_sim.json
package main

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// entry is one parsed benchmark result line.
type entry struct {
	// Op is the benchmark name with the "Benchmark" prefix and the
	// -GOMAXPROCS suffix stripped: "BenchmarkEngineStep-8" → "EngineStep".
	Op         string  `json:"op"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only under -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "avgJCT-h").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// parseLine parses one "BenchmarkX-8  N  v unit  v unit ..." line,
// returning ok=false for anything that is not a benchmark result.
func parseLine(line string) (entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	e := entry{Op: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			b := v
			e.BytesPerOp = &b
		case "allocs/op":
			a := v
			e.AllocsPerOp = &a
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
	}
	return e, true
}

// convert tees r to w while collecting parsed benchmark entries.
func convert(r io.Reader, w io.Writer) ([]entry, error) {
	var entries []entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(w, line)
		if e, ok := parseLine(line); ok {
			entries = append(entries, e)
		}
	}
	return entries, sc.Err()
}

// checkRequired verifies every comma-separated op name appears among
// the parsed entries.
func checkRequired(entries []entry, required string) error {
	if required == "" {
		return nil
	}
	have := map[string]bool{}
	for _, e := range entries {
		have[e.Op] = true
	}
	var missing []string
	for _, op := range strings.Split(required, ",") {
		op = strings.TrimSpace(op)
		if op != "" && !have[op] {
			missing = append(missing, op)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("required ops missing from benchmark output: %s", strings.Join(missing, ", "))
	}
	return nil
}

// checkRegression compares op's ns/op against the baseline JSON report
// and errors if it regressed more than pct percent. A missing baseline
// file or an op absent from the baseline is an error too: a silently
// skipped gate is worse than a failing one.
func checkRegression(entries []entry, baselineFile, op string, pct float64) error {
	if baselineFile == "" || op == "" {
		return nil
	}
	data, err := os.ReadFile(baselineFile)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var baseline []entry
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("baseline %s: %w", baselineFile, err)
	}
	find := func(es []entry, op string) (entry, bool) {
		for _, e := range es {
			if e.Op == op {
				return e, true
			}
		}
		return entry{}, false
	}
	base, ok := find(baseline, op)
	if !ok {
		return fmt.Errorf("baseline %s has no entry for op %q", baselineFile, op)
	}
	cur, ok := find(entries, op)
	if !ok {
		return fmt.Errorf("benchmark output has no entry for op %q", op)
	}
	if base.NsPerOp <= 0 {
		return fmt.Errorf("baseline ns/op for %q is %v", op, base.NsPerOp)
	}
	worse := 100 * (cur.NsPerOp - base.NsPerOp) / base.NsPerOp
	fmt.Fprintf(os.Stderr, "benchjson: %s ns/op %.0f vs baseline %.0f (%+.1f%%, limit +%.0f%%)\n",
		op, cur.NsPerOp, base.NsPerOp, worse, pct)
	if worse > pct {
		return fmt.Errorf("%s regressed %.1f%% (> %.0f%%) against %s", op, worse, pct, baselineFile)
	}
	return nil
}

// scaleCSVHeader mirrors export.Fig7Header (cmd/benchjson stays
// dependency-free so it keeps working from a piped `go run`).
var scaleCSVHeader = []string{"series", "nodes", "gpus", "jobs", "hadar_latency_us", "gavel_latency_us"}

// scaleRows converts ScaleRound benchmark entries into CSV rows. The
// benchmark reports nodes/gpus/jobs via b.ReportMetric, so the sub-name
// only contributes the series ("prop" or "fixed").
func scaleRows(entries []entry) [][]string {
	var rows [][]string
	for _, e := range entries {
		rest, ok := strings.CutPrefix(e.Op, "ScaleRound/")
		if !ok {
			continue
		}
		series, _, ok := strings.Cut(rest, "/")
		if !ok {
			continue
		}
		itoa := func(unit string) string {
			return strconv.Itoa(int(e.Metrics[unit]))
		}
		rows = append(rows, []string{
			"nodes-" + series, itoa("nodes"), itoa("gpus"), itoa("jobs"),
			strconv.FormatFloat(e.NsPerOp/1e3, 'f', -1, 64), "",
		})
	}
	sort.Slice(rows, func(i, k int) bool {
		if rows[i][0] != rows[k][0] {
			return rows[i][0] < rows[k][0]
		}
		a, _ := strconv.Atoi(rows[i][1])
		b, _ := strconv.Atoi(rows[k][1])
		return a < b
	})
	return rows
}

// mergeScaleCSV rewrites file with the benchmark rows replacing any
// previous rows of the same series, keeping rows of other series (the
// exporter's jobs-sweep) intact. A file with a different header — the
// pre-unified schema — is replaced wholesale.
func mergeScaleCSV(file string, rows [][]string) error {
	if len(rows) == 0 {
		return fmt.Errorf("no ScaleRound entries in benchmark output")
	}
	replaced := map[string]bool{}
	for _, r := range rows {
		replaced[r[0]] = true
	}
	var kept [][]string
	if data, err := os.ReadFile(file); err == nil {
		old, err := csv.NewReader(strings.NewReader(string(data))).ReadAll()
		if err == nil && len(old) > 0 && strings.Join(old[0], ",") == strings.Join(scaleCSVHeader, ",") {
			for _, r := range old[1:] {
				if len(r) > 0 && !replaced[r[0]] {
					kept = append(kept, r)
				}
			}
		}
	}
	f, err := os.Create(file)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	all := append(append([][]string{scaleCSVHeader}, kept...), rows...)
	if err := w.WriteAll(all); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output JSON file")
	require := flag.String("require", "", "comma-separated op names that must be present")
	baseline := flag.String("baseline", "", "baseline JSON report to compare against")
	regressOp := flag.String("regress-op", "", "op whose ns/op is gated against the baseline")
	regressPct := flag.Float64("regress-pct", 25, "max allowed ns/op regression percent")
	scaleCSV := flag.String("scale-csv", "", "merge ScaleRound entries into this scalability CSV")
	flag.Parse()

	entries, err := convert(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading input: %v\n", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines found in input")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encoding: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d entries to %s\n", len(entries), *out)
	if err := checkRequired(entries, *require); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := checkRegression(entries, *baseline, *regressOp, *regressPct); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *scaleCSV != "" {
		if err := mergeScaleCSV(*scaleCSV, scaleRows(entries)); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: scale-csv: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: merged scalability rows into %s\n", *scaleCSV)
	}
}
