// Command benchjson converts `go test -bench -benchmem` text output
// into a machine-readable JSON benchmark report.
//
// It reads the benchmark run from stdin, echoes every line through to
// stdout unchanged (so the pipeline stays readable in a terminal or CI
// log), and writes the parsed entries — op name, iterations, ns/op,
// B/op, allocs/op, plus any custom b.ReportMetric units — to the file
// named by -o. It exits nonzero if no benchmark lines were found, so a
// misspelled -bench pattern fails the make target instead of silently
// producing an empty report.
//
// Usage:
//
//	go test -run='^$' -bench=... -benchmem . | go run ./cmd/benchjson -o BENCH_sim.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// entry is one parsed benchmark result line.
type entry struct {
	// Op is the benchmark name with the "Benchmark" prefix and the
	// -GOMAXPROCS suffix stripped: "BenchmarkEngineStep-8" → "EngineStep".
	Op         string  `json:"op"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present only under -benchmem.
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric units (e.g. "avgJCT-h").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// parseLine parses one "BenchmarkX-8  N  v unit  v unit ..." line,
// returning ok=false for anything that is not a benchmark result.
func parseLine(line string) (entry, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return entry{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return entry{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	e := entry{Op: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return entry{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			b := v
			e.BytesPerOp = &b
		case "allocs/op":
			a := v
			e.AllocsPerOp = &a
		default:
			if e.Metrics == nil {
				e.Metrics = map[string]float64{}
			}
			e.Metrics[unit] = v
		}
	}
	return e, true
}

// convert tees r to w while collecting parsed benchmark entries.
func convert(r io.Reader, w io.Writer) ([]entry, error) {
	var entries []entry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(w, line)
		if e, ok := parseLine(line); ok {
			entries = append(entries, e)
		}
	}
	return entries, sc.Err()
}

func main() {
	out := flag.String("o", "BENCH_sim.json", "output JSON file")
	flag.Parse()

	entries, err := convert(os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: reading input: %v\n", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines found in input")
		os.Exit(1)
	}
	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encoding: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d entries to %s\n", len(entries), *out)
}
