// Command repolint runs the repository's domain-aware static-analysis
// suite (internal/lint) over every package of the module and prints
// file:line:col diagnostics.
//
// Usage:
//
//	repolint [-rules] [module-root]
//
// The module root defaults to the current directory (it must hold
// go.mod). Exit status is 0 when the tree is diagnostic-clean, 1 when
// diagnostics were reported, and 2 on a load or type-check failure.
//
// Suppress a finding site-by-site with a mandatory reason:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// placed on the flagged line or the line above it. Unjustified or
// stale suppressions are themselves diagnostics.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repolint [-rules] [module-root]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listRules {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	diags := lint.Run(pkgs, lint.Analyzers(), lint.DefaultConfig())
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d diagnostics\n", len(diags))
		os.Exit(1)
	}
}
