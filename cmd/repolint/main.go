// Command repolint runs the repository's domain-aware static-analysis
// suite (internal/lint) over every package of the module and prints
// file:line:col diagnostics.
//
// Usage:
//
//	repolint [-rules] [-set fast|deep|all] [-verbose] [-budget d] [module-root]
//
// The module root defaults to the current directory (it must hold
// go.mod). -set selects the fast syntactic rules, the deep
// interprocedural rules, or (default) both; CI runs the two sets as
// separate cached stages. -verbose prints per-analyzer wall time to
// stderr, and -budget fails the run when the analyzers' summed wall
// time exceeds the given duration, so the interprocedural pass cannot
// silently blow up CI. Exit status is 0 when the tree is
// diagnostic-clean, 1 when diagnostics were reported or the budget was
// exceeded, and 2 on a load or type-check failure.
//
// Suppress a finding site-by-site with a mandatory reason:
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// placed on the flagged line or the line above it. Unjustified or
// stale suppressions are themselves diagnostics.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/lint"
)

func main() {
	listRules := flag.Bool("rules", false, "list the analyzers and exit")
	set := flag.String("set", "all", "analyzer set to run: fast (syntactic), deep (interprocedural), or all")
	verbose := flag.Bool("verbose", false, "print per-analyzer wall time to stderr")
	budget := flag.Duration("budget", 0, "fail when summed analyzer wall time exceeds this duration (0 = no budget)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: repolint [-rules] [-set fast|deep|all] [-verbose] [-budget d] [module-root]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var analyzers []*lint.Analyzer
	switch *set {
	case "fast":
		analyzers = lint.AnalyzersFast()
	case "deep":
		analyzers = lint.AnalyzersDeep()
	case "all":
		analyzers = lint.Analyzers()
	default:
		fmt.Fprintf(os.Stderr, "repolint: unknown -set %q (want fast, deep, or all)\n", *set)
		os.Exit(2)
	}

	if *listRules {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	diags, timings := lint.RunTimed(pkgs, analyzers, lint.DefaultConfig())
	var total time.Duration
	for _, t := range timings {
		total += t.Elapsed
	}
	if *verbose {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "repolint: %-12s %8.1fms\n", t.Name, float64(t.Elapsed.Microseconds())/1000)
		}
		fmt.Fprintf(os.Stderr, "repolint: %-12s %8.1fms\n", "total", float64(total.Microseconds())/1000)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	fail := false
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d diagnostics\n", len(diags))
		fail = true
	}
	if *budget > 0 && total > *budget {
		fmt.Fprintf(os.Stderr, "repolint: analyzer wall time %s exceeded budget %s\n",
			total.Round(time.Millisecond), *budget)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}
