// Command whatif explores the parameter-server training model
// (internal/psmodel): it derives the per-accelerator throughput profile
// X_j^r of every Table II workload from first principles and answers
// what-if questions about gang size and network bandwidth — the
// quantities that decide how much accelerator heterogeneity a scheduler
// can exploit.
//
// Usage:
//
//	whatif                      # derived throughput matrix, defaults
//	whatif -workers 8           # larger gang: sync barrier grows
//	whatif -nic 25 -ps 200      # faster fabric: ratios widen
//	whatif -sweep               # V100:K80 speedup vs gang size
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gpu"
	"repro/internal/psmodel"
)

func main() {
	var (
		workers = flag.Int("workers", 2, "gang size W_j")
		nic     = flag.Float64("nic", 10, "per-worker NIC bandwidth (Gb/s)")
		ps      = flag.Float64("ps", 40, "aggregate parameter-server bandwidth (Gb/s)")
		sweep   = flag.Bool("sweep", false, "sweep gang size and print V100:K80 speedups")
	)
	flag.Parse()

	cfg := psmodel.DefaultConfig(*workers)
	cfg.Network.WorkerGbps = *nic
	cfg.Network.PSAggregateGbps = *ps
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "whatif: %v\n", err)
		os.Exit(2)
	}

	types := []gpu.Type{gpu.V100, gpu.P100, gpu.K80, gpu.T4, gpu.K520}
	if *sweep {
		fmt.Println("V100:K80 speedup vs gang size (sync barrier amortization)")
		fmt.Printf("%-14s", "model")
		gangs := []int{1, 2, 4, 8, 16, 32}
		for _, w := range gangs {
			fmt.Printf("%8s", fmt.Sprintf("W=%d", w))
		}
		fmt.Println()
		for _, m := range psmodel.DefaultModels() {
			fmt.Printf("%-14s", m.Name)
			for _, w := range gangs {
				c := cfg
				c.Workers = w
				ratio, err := c.SpeedupRatio(m, gpu.V100, gpu.K80)
				if err != nil {
					fmt.Fprintf(os.Stderr, "whatif: %v\n", err)
					os.Exit(1)
				}
				fmt.Printf("%8.1f", ratio)
			}
			fmt.Println()
		}
		return
	}

	fmt.Printf("Derived X_j^r (iterations/s per worker), W=%d, NIC %.0f Gb/s, PS %.0f Gb/s\n\n",
		*workers, *nic, *ps)
	fmt.Printf("%-14s", "model")
	for _, t := range types {
		fmt.Printf("%9s", t)
	}
	fmt.Printf("%10s %10s\n", "V100:K80", "comm frac")
	for _, m := range psmodel.DefaultModels() {
		fmt.Printf("%-14s", m.Name)
		for _, t := range types {
			x, err := cfg.Throughput(m, t)
			if err != nil {
				fmt.Fprintf(os.Stderr, "whatif: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%9.2f", x)
		}
		ratio, _ := cfg.SpeedupRatio(m, gpu.V100, gpu.K80)
		frac, _ := cfg.CommunicationFraction(m, gpu.V100)
		fmt.Printf("%10.1f %9.0f%%\n", ratio, 100*frac)
	}
	fmt.Println("\nThe V100:K80 column is the heterogeneity a scheduler can exploit;")
	fmt.Println("communication-bound models (high comm frac) benefit less from fast")
	fmt.Println("accelerators, which is why task placement must be model-aware.")
}
