// Command dashboard runs a scheduling comparison and serves it as a web
// dashboard: summary tables, completion-CDF and occupancy charts
// (inline SVG), per-job listings, and a JSON API.
//
// Usage:
//
//	dashboard [-addr :8080] [-jobs 96] [-seed 1] [-pattern static]
//
// Open http://localhost:8080 after the simulations finish.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/web"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		n       = flag.Int("jobs", 96, "trace length")
		seed    = flag.Int64("seed", 1, "random seed")
		pattern = flag.String("pattern", "static", "arrival pattern: static or poisson")
		rate    = flag.Float64("rate", 2.0/3600, "poisson arrival rate (jobs/second)")
	)
	flag.Parse()

	cfg := trace.Config{NumJobs: *n, Seed: *seed, Rate: *rate}
	if *pattern == "poisson" {
		cfg.Pattern = trace.Poisson
	}
	jobs, err := trace.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dashboard: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("simulating %d jobs on %s with 4 schedulers...\n",
		len(jobs), experiments.SimCluster())
	cmp, err := experiments.RunComparison(
		experiments.SimCluster(), jobs,
		[]sched.Scheduler{
			experiments.NewHadar(), experiments.NewGavel(),
			experiments.NewTiresias(), experiments.NewYARNCS(),
		},
		sim.DefaultOptions())
	if err != nil {
		fmt.Fprintf(os.Stderr, "dashboard: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(cmp.Table())
	fmt.Printf("serving dashboard on %s\n", *addr)
	if err := http.ListenAndServe(*addr, web.NewServer(cmp).Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "dashboard: %v\n", err)
		os.Exit(1)
	}
}
