// Command dashboard runs a scheduling comparison and serves it as a web
// dashboard: summary tables, completion-CDF and occupancy charts
// (inline SVG), per-job listings, and a JSON API.
//
// Usage:
//
//	dashboard [-addr :8080] [-jobs 96] [-seed 1] [-pattern static]
//	          [-fail node:start:end]...
//
// Open http://localhost:8080 after the simulations finish. Each -fail
// injects one machine outage window (seconds); with outages the index
// page gains a fault-tolerance table.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/web"
)

// failList collects repeated -fail flags as outage windows.
type failList []sim.Failure

func (f *failList) String() string {
	var parts []string
	for _, w := range *f {
		parts = append(parts, fmt.Sprintf("%d:%g:%g", w.Node, w.Start, w.End))
	}
	return strings.Join(parts, ",")
}

func (f *failList) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return fmt.Errorf("want node:start:end, got %q", s)
	}
	node, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad node in %q: %v", s, err)
	}
	start, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return fmt.Errorf("bad start in %q: %v", s, err)
	}
	end, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("bad end in %q: %v", s, err)
	}
	*f = append(*f, sim.Failure{Node: node, Start: start, End: end})
	return nil
}

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		n       = flag.Int("jobs", 96, "trace length")
		seed    = flag.Int64("seed", 1, "random seed")
		pattern = flag.String("pattern", "static", "arrival pattern: static or poisson")
		rate    = flag.Float64("rate", 2.0/3600, "poisson arrival rate (jobs/second)")
	)
	var fails failList
	flag.Var(&fails, "fail", "inject a node outage node:start:end in seconds (repeatable)")
	flag.Parse()

	cfg := trace.Config{NumJobs: *n, Seed: *seed, Rate: *rate}
	if *pattern == "poisson" {
		cfg.Pattern = trace.Poisson
	}
	jobs, err := trace.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dashboard: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("simulating %d jobs on %s with 4 schedulers...\n",
		len(jobs), experiments.SimCluster())
	opts := sim.DefaultOptions()
	opts.Failures = fails
	cmp, err := experiments.RunComparison(
		experiments.SimCluster(), jobs,
		[]sched.Scheduler{
			experiments.NewHadar(), experiments.NewGavel(),
			experiments.NewTiresias(), experiments.NewYARNCS(),
		},
		opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dashboard: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(cmp.Table())
	fmt.Printf("serving dashboard on %s\n", *addr)
	if err := http.ListenAndServe(*addr, web.NewServer(cmp).Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "dashboard: %v\n", err)
		os.Exit(1)
	}
}
