// Command crashchaos is the kill/restart chaos harness for hadard's
// crash-safe journal. Each seeded iteration boots a real hadard
// process with a write-ahead journal, drives it over HTTP with a
// loadgen workload of idempotency-keyed submissions, and murders it at
// a seed-derived point — either a SIGKILL after a random number of
// acknowledged admissions, or a torn write injected mid-append via
// HADARD_CRASH_AFTER_BYTES. The process is then restarted with
// -recover and the drive resumes with the same keys.
//
// After one or two kills the run finishes cleanly: every job is
// driven to a terminal phase, the server is shut down gracefully with
// SIGTERM, and the harness asserts the durability contract end to end:
//
//   - zero acked-job loss: every admission the client saw acknowledged
//     is present after every recovery and in the final journal replay;
//   - no duplicate admissions: resubmitting every key yields
//     deduped=true with the originally acknowledged job ID;
//   - digest equality: a full fresh-engine replay of the journal
//     (service.VerifyWAL) reproduces every per-round schedule digest,
//     and its final digest matches the live engine's last snapshot —
//     the recovered schedule is byte-identical to an uninterrupted run.
//
// Usage (normally via `make crash-smoke` or `make crash-chaos`):
//
//	crashchaos -hadard bin/hadard [-seeds 20] [-first-seed 1]
//	           [-jobs 32] [-dir DIR] [-timeout 90s] [-v]
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/loadgen"
	"repro/internal/policy"
	"repro/internal/service"
	"repro/internal/sim"
)

func main() {
	var (
		hadardBin = flag.String("hadard", "", "path to the hadard binary (required)")
		seeds     = flag.Int("seeds", 20, "number of seeded kill/restart iterations")
		firstSeed = flag.Int64("first-seed", 1, "first seed; iteration i uses first-seed+i")
		jobCount  = flag.Int("jobs", 32, "jobs per iteration")
		baseDir   = flag.String("dir", "", "working directory (default: a temp dir)")
		budget    = flag.Duration("timeout", 90*time.Second, "wall-clock budget per iteration")
		verbose   = flag.Bool("v", false, "stream server output and per-step progress")
	)
	flag.Parse()
	if *hadardBin == "" {
		fmt.Fprintln(os.Stderr, "crashchaos: -hadard is required")
		os.Exit(2)
	}
	bin, err := filepath.Abs(*hadardBin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crashchaos: %v\n", err)
		os.Exit(2)
	}
	dir := *baseDir
	if dir == "" {
		dir, err = os.MkdirTemp("", "crashchaos-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashchaos: %v\n", err)
			os.Exit(1)
		}
	}

	failures, kills := 0, 0
	start := time.Now()
	for i := 0; i < *seeds; i++ {
		seed := *firstSeed + int64(i)
		r := &seedRun{
			seed:    seed,
			bin:     bin,
			dir:     filepath.Join(dir, fmt.Sprintf("seed-%d", seed)),
			jobs:    *jobCount,
			ledger:  make(map[string]int),
			client:  &http.Client{Timeout: 10 * time.Second},
			verbose: *verbose,
		}
		err := r.run(*budget)
		kills += r.kills
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "crashchaos: seed %d FAILED: %v\n", seed, err)
			fmt.Fprintf(os.Stderr, "crashchaos: seed %d server output:\n%s\n", seed, r.out.String())
			fmt.Fprintf(os.Stderr, "crashchaos: seed %d state kept in %s\n", seed, r.dir)
			continue
		}
		fmt.Printf("crashchaos: seed %d ok (%d kills, %d jobs, %d acked)\n",
			seed, r.kills, r.jobs, len(r.ledger))
		os.RemoveAll(r.dir)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "crashchaos: %d of %d seeds failed\n", failures, *seeds)
		os.Exit(1)
	}
	os.RemoveAll(dir)
	fmt.Printf("crashchaos: all %d seeds survived %d kills in %.1fs — no acked-job loss, no duplicate admissions, digests identical\n",
		*seeds, kills, time.Since(start).Seconds())
}

// seedRun is one seeded kill/restart iteration against one journal.
type seedRun struct {
	seed    int64
	bin     string
	dir     string // per-seed scratch: WAL dir, addr file, logs
	jobs    int
	kills   int
	ledger  map[string]int // acked idempotency key -> job ID
	client  *http.Client
	verbose bool

	rng      *rand.Rand
	proc     *exec.Cmd
	procDone chan error
	addr     string
	out      bytes.Buffer
	deadline time.Time
}

func (r *seedRun) logf(format string, args ...any) {
	if r.verbose {
		fmt.Printf("crashchaos: seed %d: "+format+"\n", append([]any{r.seed}, args...)...)
	}
}

func (r *seedRun) walDir() string { return filepath.Join(r.dir, "wal") }

// run executes the iteration: generate the workload, kill the server
// once or twice mid-drive, then finish cleanly and verify.
func (r *seedRun) run(budget time.Duration) error {
	r.rng = rand.New(rand.NewSource(r.seed))
	r.deadline = time.Now().Add(budget)
	if err := os.MkdirAll(r.walDir(), 0o755); err != nil {
		return err
	}
	// Small jobs so the virtual clock retires them in a handful of
	// rounds; one burst so the queue stays busy while the killer aims.
	jobs, err := loadgen.Generate(loadgen.Config{
		Model: loadgen.Bursty, Jobs: r.jobs, Seed: r.seed,
		BurstSize: r.jobs, BurstGap: 3600,
		MinGPUHours: 0.05, MaxGPUHours: 0.5,
	})
	if err != nil {
		return err
	}
	keyFunc := func(j *job.Job) string { return fmt.Sprintf("s%d-j%d", r.seed, j.ID) }

	kills := 1 + r.rng.Intn(2)
	for k := 0; k < kills; k++ {
		// Alternate the crash mechanism deterministically so both a
		// between-requests SIGKILL and a torn mid-append write appear
		// across the seed sweep.
		tornWrite := (r.seed+int64(k))%2 == 0
		killAfter := -1
		if !tornWrite {
			killAfter = 1 + r.rng.Intn(r.jobs)
		}
		if err := r.startServer(k > 0, tornWrite); err != nil {
			return fmt.Errorf("start %d: %w", k, err)
		}
		if k > 0 {
			if err := r.checkRecovered(); err != nil {
				return fmt.Errorf("after kill %d: %w", k, err)
			}
		}
		target := &httpTarget{run: r, killAfter: killAfter}
		_, driveErr := loadgen.Drive(target, jobs, loadgen.DriveOptions{
			KeyFunc: keyFunc, MaxDuration: time.Until(r.deadline),
		})
		mode := "sigkill"
		if tornWrite {
			mode = "torn-append"
		}
		r.logf("kill %d (%s): drive ended with %v, %d keys acked", k, mode, driveErr, len(r.ledger))
		// The drive usually dies with the server; if the kill point was
		// never reached (everything already acked), kill directly.
		r.killServer()
		if err := r.waitExit(false); err != nil {
			return fmt.Errorf("kill %d: %w", k, err)
		}
		r.kills++
	}

	// Final leg: recover once more, verify nothing acked was lost, and
	// drive every job to acceptance with no interference.
	if err := r.startServer(true, false); err != nil {
		return fmt.Errorf("final start: %w", err)
	}
	if err := r.checkRecovered(); err != nil {
		return fmt.Errorf("final recovery: %w", err)
	}
	target := &httpTarget{run: r, killAfter: -1}
	if _, err := loadgen.Drive(target, jobs, loadgen.DriveOptions{
		KeyFunc: keyFunc, MaxDuration: time.Until(r.deadline),
	}); err != nil {
		return fmt.Errorf("final drive: %w", err)
	}
	if len(r.ledger) != r.jobs {
		return fmt.Errorf("final drive acked %d of %d keys", len(r.ledger), r.jobs)
	}

	// Every key resubmitted must dedup against the original admission;
	// httpTarget fails the run on any fresh ack or ID mismatch.
	redrive, err := loadgen.Drive(target, jobs, loadgen.DriveOptions{
		KeyFunc: keyFunc, MaxDuration: time.Until(r.deadline),
	})
	if err != nil {
		return fmt.Errorf("dedup redrive: %w", err)
	}
	if redrive.Submitted != 0 || redrive.Deduped != r.jobs {
		return fmt.Errorf("dedup redrive admitted %d fresh jobs, deduped %d (want 0/%d)",
			redrive.Submitted, redrive.Deduped, r.jobs)
	}

	// Wait for every job to reach a terminal phase so the engine goes
	// idle and the digest stops advancing, then capture it.
	var snap snapDoc
	for {
		s, err := r.snapshot()
		if err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		if s.Completed+s.Cancelled >= r.jobs {
			snap = s
			break
		}
		if time.Now().After(r.deadline) {
			return fmt.Errorf("only %d of %d jobs terminal at deadline", s.Completed+s.Cancelled, r.jobs)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Graceful SIGTERM: drain, flush, final checkpoint, exit 0.
	if err := r.proc.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("sigterm: %w", err)
	}
	if err := r.waitExit(true); err != nil {
		return fmt.Errorf("graceful shutdown: %w", err)
	}

	return r.verifyJournal(snap)
}

// verifyJournal replays the whole journal on a fresh engine and checks
// it against the client-side ledger and the live run's final digest.
func (r *seedRun) verifyJournal(snap snapDoc) error {
	simOpts := serverSimOptions()
	vr, err := service.VerifyWAL(experiments.SimCluster(), policy.New(policy.SRTF, true), simOpts, r.walDir())
	if err != nil {
		return fmt.Errorf("journal replay: %w", err)
	}
	r.logf("verify: %d records, %d rounds, %d submits, digest %#x", vr.Records, vr.Rounds, vr.Submitted, vr.Digest)
	if vr.Digest != snap.Digest {
		return fmt.Errorf("replay digest %#x != live digest %#x", vr.Digest, snap.Digest)
	}
	if vr.Submitted != r.jobs || len(vr.Jobs) != r.jobs {
		return fmt.Errorf("journal admitted %d jobs under %d keys, want %d — duplicate or lost admission",
			vr.Submitted, len(vr.Jobs), r.jobs)
	}
	seen := make(map[int]bool, len(vr.Jobs))
	for key, id := range r.ledger {
		got, ok := vr.Jobs[key]
		if !ok {
			return fmt.Errorf("acked key %q missing from journal replay", key)
		}
		if got != id {
			return fmt.Errorf("key %q acked as job %d but journal replays job %d", key, id, got)
		}
		if seen[got] {
			return fmt.Errorf("job ID %d admitted under two keys", got)
		}
		seen[got] = true
	}
	if vr.TruncatedBytes != 0 {
		return fmt.Errorf("final journal still has a %d-byte torn tail after recovery", vr.TruncatedBytes)
	}
	return nil
}

// serverSimOptions mirrors the engine options the hadard invocation
// uses; VerifyWAL must build an identical engine or the replayed
// digests diverge for configuration rather than correctness reasons.
func serverSimOptions() sim.Options {
	opts := sim.DefaultOptions()
	opts.RoundLength = 6 * 60
	opts.Validate = true
	return opts
}

// startServer boots hadard on a fresh port, with -recover after the
// first boot and the torn-write failpoint armed when asked. It waits
// until the server publishes its bound address and serves traffic.
func (r *seedRun) startServer(recover, tornWrite bool) error {
	addrFile := filepath.Join(r.dir, "addr")
	if err := os.Remove(addrFile); err != nil && !os.IsNotExist(err) {
		return err
	}
	args := []string{
		"-scheduler", "ref-srtf", "-cluster", "sim", "-clock", "virtual",
		"-addr", "127.0.0.1:0", "-addr-file", addrFile,
		"-wal", r.walDir(), "-fsync", "off", "-checkpoint-every", "16",
		"-queue", "64",
	}
	if recover {
		args = append(args, "-recover")
	}
	cmd := exec.Command(r.bin, args...)
	cmd.Env = os.Environ()
	if tornWrite {
		// Tear the append that crosses a point a little past the
		// journal's current end; round records flow continuously, so
		// this fires while the drive is in flight.
		size := int64(0)
		if st, err := os.Stat(filepath.Join(r.walDir(), "journal.wal")); err == nil {
			size = st.Size()
		}
		after := size + int64(100+r.rng.Intn(2500))
		cmd.Env = append(cmd.Env, fmt.Sprintf("HADARD_CRASH_AFTER_BYTES=%d", after))
		r.logf("arming torn write past byte %d", after)
	}
	fmt.Fprintf(&r.out, "--- start recover=%v torn=%v ---\n", recover, tornWrite)
	cmd.Stdout = &r.out
	cmd.Stderr = &r.out
	if err := cmd.Start(); err != nil {
		return err
	}
	r.proc = cmd
	r.procDone = make(chan error, 1)
	go func() { r.procDone <- cmd.Wait() }()

	for {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			r.addr = "http://" + string(b)
			return nil
		}
		select {
		case err := <-r.procDone:
			r.procDone <- err
			return fmt.Errorf("server exited before binding: %v", err)
		case <-time.After(5 * time.Millisecond):
		}
		if time.Now().After(r.deadline) {
			return fmt.Errorf("server never published its address")
		}
	}
}

// killServer SIGKILLs the process if it is still running; exits from
// the torn-write failpoint land here as a no-op.
func (r *seedRun) killServer() {
	select {
	case err := <-r.procDone:
		r.procDone <- err
	default:
		r.proc.Process.Kill()
	}
}

// waitExit waits for the current process to die. A clean exit is
// required only for the graceful SIGTERM leg; kills may surface as
// signal deaths or the failpoint's exit 137.
func (r *seedRun) waitExit(clean bool) error {
	select {
	case err := <-r.procDone:
		if clean && err != nil {
			return fmt.Errorf("server exited uncleanly: %v", err)
		}
		return nil
	case <-time.After(time.Until(r.deadline)):
		r.proc.Process.Kill()
		return fmt.Errorf("server did not exit before the deadline")
	}
}

// snapDoc is the slice of /api/snapshot the harness reads.
type snapDoc struct {
	Completed int            `json:"completed"`
	Cancelled int            `json:"cancelled"`
	Digest    uint64         `json:"digest"`
	Phases    map[int]string `json:"phases"`
}

func (r *seedRun) snapshot() (snapDoc, error) {
	var doc snapDoc
	resp, err := r.client.Get(r.addr + "/api/snapshot")
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("snapshot status %d", resp.StatusCode)
	}
	return doc, json.NewDecoder(resp.Body).Decode(&doc)
}

// checkRecovered asserts zero acked-job loss right after a restart:
// every admission the client has seen acknowledged must exist in the
// recovered engine, in some lifecycle phase.
func (r *seedRun) checkRecovered() error {
	snap, err := r.snapshot()
	if err != nil {
		return err
	}
	for key, id := range r.ledger {
		if _, ok := snap.Phases[id]; !ok {
			return fmt.Errorf("acked job %d (key %q) lost in recovery", id, key)
		}
	}
	r.logf("recovery holds all %d acked jobs", len(r.ledger))
	return nil
}

// httpTarget adapts hadard's HTTP API to loadgen's KeyedTarget,
// maintaining the client-side ledger and optionally pulling the
// trigger after a seed-chosen number of acknowledgements.
type httpTarget struct {
	run       *seedRun
	killAfter int // SIGKILL after this many acks this drive; -1 = never
	acks      int
}

// Submit satisfies loadgen.Target; the harness always drives keyed.
func (t *httpTarget) Submit(j *job.Job) error {
	_, _, err := t.SubmitKeyed("", j)
	return err
}

// SubmitKeyed posts the job spec with its idempotency key and records
// the acknowledged admission. HTTP 429 and 503 are translated back to
// the service error types so loadgen's retry policy applies; transport
// errors mean the server died and abort the drive.
func (t *httpTarget) SubmitKeyed(key string, j *job.Job) (int, bool, error) {
	// Invert trace.FromDemand: gpuHours = TotalIters / (3600 * best
	// throughput). The server rebuilds an equivalent job from the spec.
	_, best, ok := j.BestType()
	if !ok {
		return 0, false, fmt.Errorf("job %d has no usable GPU type", j.ID)
	}
	body, err := json.Marshal(map[string]any{
		"key": key, "model": j.Model, "workers": j.Workers,
		"gpu_hours": j.TotalIters() / (3600 * best),
	})
	if err != nil {
		return 0, false, err
	}
	resp, err := t.run.client.Post(t.run.addr+"/api/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false, fmt.Errorf("server gone: %w", err)
	}
	defer resp.Body.Close()
	var out struct {
		ID      int    `json:"id"`
		Deduped bool   `json:"deduped"`
		Error   string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, false, fmt.Errorf("server gone mid-response: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusAccepted, http.StatusOK:
	case http.StatusTooManyRequests:
		// Retry promptly regardless of the server's polite hint; the
		// harness is the only client.
		return 0, false, &service.BusyError{RetryAfter: 5 * time.Millisecond}
	case http.StatusServiceUnavailable:
		// Verdict timeout or shutdown race: ambiguous, safe to retry
		// because every submission carries a key.
		return 0, false, &service.DeadError{}
	default:
		return 0, false, fmt.Errorf("submit key %q: status %d: %s", key, resp.StatusCode, out.Error)
	}
	if prev, acked := t.run.ledger[key]; acked && (!out.Deduped || out.ID != prev) {
		return 0, false, fmt.Errorf("duplicate admission: key %q was job %d, now job %d (deduped=%v)",
			key, prev, out.ID, out.Deduped)
	}
	t.run.ledger[key] = out.ID
	t.acks++
	if t.killAfter > 0 && t.acks >= t.killAfter {
		t.killAfter = -1
		t.run.logf("SIGKILL after ack %d", t.acks)
		t.run.killServer()
	}
	return out.ID, out.Deduped, nil
}
