// Command livecluster runs the paper's prototype architecture locally:
// it spawns RPC worker agents (one per simulated machine) on loopback
// TCP, drives them with a scheduler as the controller process, and
// replays a workload in scaled real time.
//
// Usage:
//
//	livecluster [-scheduler hadar] [-jobs 10] [-seed 7]
//	            [-timescale 36000] [-round 6] [-model-costs]
//	            [-drop 0] [-latency 0] [-chaos-seed 1]
//
// With the default timescale, one wall-clock second represents ten
// simulated hours, so the Table III workload replays in a few seconds
// while still exercising live launch/preempt/checkpoint RPCs.
//
// -drop and -latency inject RPC faults (a drop probability and a
// delay probability with delays up to half the call timeout) through a
// deterministic chaos transport seeded by -chaos-seed, exercising the
// controller's retry/heartbeat/recovery machinery; the fault counters
// print after the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/gpu"
	"repro/internal/rpccluster"
	"repro/internal/sched"
	"repro/internal/trace"
)

func main() {
	var (
		schedName  = flag.String("scheduler", "hadar", "hadar, hadar-makespan, gavel, tiresias, yarn-cs")
		jobs       = flag.Int("jobs", 10, "number of prototype jobs")
		seed       = flag.Int64("seed", 7, "workload seed")
		timescale  = flag.Float64("timescale", 36000, "simulated seconds per wall-clock second")
		roundMin   = flag.Float64("round", 6, "scheduling round (simulated minutes)")
		modelCosts = flag.Bool("model-costs", true, "use Table IV checkpoint costs")
		dropProb   = flag.Float64("drop", 0, "probability an RPC is dropped (chaos injection)")
		latProb    = flag.Float64("latency", 0, "probability an RPC is delayed (chaos injection)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed for the chaos transport")
	)
	flag.Parse()

	var s sched.Scheduler
	switch *schedName {
	case "hadar":
		s = experiments.NewHadar()
	case "hadar-makespan":
		s = experiments.NewHadarMakespan()
	case "gavel":
		s = experiments.NewGavel()
	case "tiresias":
		s = experiments.NewTiresias()
	case "yarn-cs":
		s = experiments.NewYARNCS()
	default:
		fmt.Fprintf(os.Stderr, "livecluster: unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}

	// The prototype fleet: 8 GPUs across four machine types.
	nodeTypes := []gpu.Type{gpu.T4, gpu.K520, gpu.K80, gpu.V100}
	var specs []rpccluster.NodeSpec
	for i, typ := range nodeTypes {
		w := rpccluster.NewWorker(i, 2, *timescale)
		h, err := rpccluster.Serve("127.0.0.1:0", w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
			os.Exit(1)
		}
		defer h.Close()
		specs = append(specs, rpccluster.NodeSpec{Addr: h.Addr, GPU: typ, Devices: 2, Speed: 1})
		fmt.Printf("worker %d (%s x2) on %s\n", i, typ, h.Addr)
	}

	opts := rpccluster.DefaultOptions()
	opts.TimeScale = *timescale
	opts.RoundLength = *roundMin * 60
	opts.UseModelCosts = *modelCosts
	if *dropProb > 0 || *latProb > 0 {
		addrs := make([]string, len(specs))
		for i, sp := range specs {
			addrs[i] = sp.Addr
		}
		opts.CallTimeout = 100 * time.Millisecond
		inner, err := rpccluster.NewDialTransport(addrs, opts.CallTimeout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
			os.Exit(1)
		}
		opts.Transport = rpccluster.NewChaos(inner, rpccluster.ChaosOptions{
			Seed:        *chaosSeed,
			DropProb:    *dropProb,
			LatencyProb: *latProb,
			MaxLatency:  opts.CallTimeout / 2,
		})
	}
	ctl, err := rpccluster.NewController(s, specs, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
		os.Exit(1)
	}
	defer ctl.Close()

	workload := trace.PrototypeWorkload(*seed)
	if *jobs < len(workload) {
		workload = workload[:*jobs]
	}
	fmt.Printf("\nreplaying %d jobs with %s at %.0fx real time...\n\n",
		len(workload), s.Name(), *timescale)
	report, err := ctl.Run(workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "livecluster: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(report)
	for _, jr := range report.Jobs {
		fmt.Printf("  job %2d %-12s W=%d  start %6.2fh  finish %6.2fh  reallocs %d\n",
			jr.ID, jr.Model, jr.Workers, jr.Start/3600, jr.Finish/3600, jr.Reallocations)
	}
	if report.Faults.Any() {
		fmt.Printf("  faults: %s\n", report.Faults)
	}
}
