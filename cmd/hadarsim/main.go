// Command hadarsim runs one scheduler on one trace through the
// round-based cluster simulator and prints the resulting metrics.
//
// Usage:
//
//	hadarsim [-scheduler hadar] [-cluster sim|physical] [-jobs 480]
//	         [-seed 1] [-pattern static|poisson] [-rate 0.02]
//	         [-round 6] [-model-costs] [-trace trace.json] [-cdf]
//	         [-fail node:start:end]...
//	         [-cpuprofile cpu.out] [-memprofile mem.out] [-exectrace trace.out]
//
// Schedulers: hadar, hadar-makespan, gavel, tiresias, yarn-cs.
// With -trace, jobs are loaded from a tracegen JSON file instead of
// being synthesized. Each -fail injects one machine outage window
// (seconds); the flag repeats for multiple outages.
//
// The profiling flags capture the simulation loop only (setup and
// report printing excluded): -cpuprofile and -memprofile write pprof
// profiles, -exectrace writes a runtime execution trace for
// `go tool trace` (named -exectrace because -trace is the job-trace
// input). `make profile` wires them to a paper-scale run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strconv"
	"strings"

	"repro/internal/allox"
	"repro/internal/experiments"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/trace"
)

// failList collects repeated -fail flags as outage windows.
type failList []sim.Failure

func (f *failList) String() string {
	var parts []string
	for _, w := range *f {
		parts = append(parts, fmt.Sprintf("%d:%g:%g", w.Node, w.Start, w.End))
	}
	return strings.Join(parts, ",")
}

func (f *failList) Set(s string) error {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return fmt.Errorf("want node:start:end, got %q", s)
	}
	node, err := strconv.Atoi(parts[0])
	if err != nil {
		return fmt.Errorf("bad node in %q: %v", s, err)
	}
	start, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return fmt.Errorf("bad start in %q: %v", s, err)
	}
	end, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return fmt.Errorf("bad end in %q: %v", s, err)
	}
	*f = append(*f, sim.Failure{Node: node, Start: start, End: end})
	return nil
}

// runProfiled brackets fn with whichever profilers were requested: CPU
// profile and execution trace around the run, heap profile (after a
// forced GC, so it shows live retention rather than garbage) once it
// finishes. Empty file names disable the corresponding profiler.
func runProfiled(cpu, mem, trc string, fn func() (*metrics.Report, error)) (*metrics.Report, error) {
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return nil, err
		}
		defer pprof.StopCPUProfile()
	}
	if trc != "" {
		f, err := os.Create(trc)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			return nil, err
		}
		defer rtrace.Stop()
	}
	r, err := fn()
	if err == nil && mem != "" {
		f, ferr := os.Create(mem)
		if ferr != nil {
			return nil, ferr
		}
		defer f.Close()
		runtime.GC()
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			return nil, werr
		}
	}
	return r, err
}

func main() {
	var (
		schedName  = flag.String("scheduler", "hadar", "scheduler: hadar, hadar-makespan, gavel, tiresias, yarn-cs, allox, ref-fifo, ref-srtf")
		clusterSel = flag.String("cluster", "sim", "cluster config: sim (60 GPUs) or physical (8 GPUs)")
		n          = flag.Int("jobs", 480, "number of synthesized jobs (ignored with -trace)")
		seed       = flag.Int64("seed", 1, "random seed")
		pattern    = flag.String("pattern", "static", "arrival pattern: static or poisson")
		rate       = flag.Float64("rate", 480.0/(7*3600), "poisson arrival rate (jobs/second)")
		roundMin   = flag.Float64("round", 6, "scheduling round length (minutes)")
		modelCosts = flag.Bool("model-costs", false, "use per-model Table IV checkpoint costs")
		traceFile  = flag.String("trace", "", "load jobs from a tracegen JSON file")
		showCDF    = flag.Bool("cdf", false, "print the completion CDF")
		eventsFile = flag.String("events", "", "write a JSONL simulation event log to this file")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile of the simulation to this file")
		memProf    = flag.String("memprofile", "", "write a post-simulation heap profile to this file")
		execTrace  = flag.String("exectrace", "", "write a runtime execution trace of the simulation to this file")
	)
	var fails failList
	flag.Var(&fails, "fail", "inject a node outage node:start:end in seconds (repeatable)")
	flag.Parse()

	var s sched.Scheduler
	switch *schedName {
	case "hadar":
		s = experiments.NewHadar()
	case "hadar-makespan":
		s = experiments.NewHadarMakespan()
	case "gavel":
		s = experiments.NewGavel()
	case "tiresias":
		s = experiments.NewTiresias()
	case "yarn-cs":
		s = experiments.NewYARNCS()
	case "allox":
		s = allox.New()
	case "ref-fifo":
		s = policy.New(policy.FIFO, true)
	case "ref-srtf":
		s = policy.New(policy.SRTF, true)
	default:
		fmt.Fprintf(os.Stderr, "hadarsim: unknown scheduler %q\n", *schedName)
		os.Exit(2)
	}

	c := experiments.SimCluster()
	if *clusterSel == "physical" {
		c = experiments.PhysicalCluster()
	} else if *clusterSel != "sim" {
		fmt.Fprintf(os.Stderr, "hadarsim: unknown cluster %q\n", *clusterSel)
		os.Exit(2)
	}

	var jobs []*job.Job
	var err error
	if *traceFile != "" {
		f, ferr := os.Open(*traceFile)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "hadarsim: %v\n", ferr)
			os.Exit(1)
		}
		jobs, err = trace.Read(f)
		f.Close()
	} else {
		cfg := trace.Config{NumJobs: *n, Seed: *seed, Rate: *rate}
		if *pattern == "poisson" {
			cfg.Pattern = trace.Poisson
		}
		jobs, err = trace.Generate(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadarsim: %v\n", err)
		os.Exit(1)
	}

	opts := sim.DefaultOptions()
	opts.RoundLength = *roundMin * 60
	opts.UseModelCosts = *modelCosts
	opts.Failures = fails
	if *eventsFile != "" {
		f, ferr := os.Create(*eventsFile)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "hadarsim: %v\n", ferr)
			os.Exit(1)
		}
		defer f.Close()
		opts.EventLog = f
	}
	report, err := runProfiled(*cpuProf, *memProf, *execTrace, func() (*metrics.Report, error) {
		return sim.Run(c, jobs, s, opts)
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hadarsim: %v\n", err)
		os.Exit(1)
	}

	fmt.Println(report)
	fmt.Printf("  min/median/max JCT: %.2f / %.2f / %.2f h\n",
		report.MinJCT()/3600, report.MedianJCT()/3600, report.MaxJCT()/3600)
	fmt.Printf("  avg queue delay:    %.2f h\n", report.AvgQueueDelay()/3600)
	fmt.Printf("  GPU utilization:    %.1f%% (occupancy %.1f%%)\n",
		100*report.Utilization(), 100*report.Occupancy())
	fmt.Printf("  realloc fraction:   %.1f%% of allocated job-rounds\n",
		100*report.ReallocationFraction())
	fmt.Printf("  decisions:          %d rounds, avg %s per decision\n",
		report.Decisions, report.AvgDecisionTime())
	if report.Faults.Any() {
		fmt.Printf("  faults:             %s\n", report.Faults)
	}
	if *showCDF {
		fmt.Println("  completion CDF:")
		for _, p := range report.CompletionCDF() {
			fmt.Printf("    %10.2fh %6.3f\n", p.X/3600, p.Fraction)
		}
	}
}
