// Command offlineopt demonstrates the Theorem 2 machinery on a tiny
// instance: it brute-forces the offline-optimal schedule of Problem P1,
// replays Hadar online on the same instance, and reports the achieved
// fraction of the optimum against the proven 2*alpha bound.
//
// Usage:
//
//	offlineopt [-rounds 4] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/job"
	"repro/internal/offline"
	"repro/internal/stats"
)

func main() {
	var (
		rounds = flag.Int("rounds", 4, "scheduling rounds in the horizon (<= 6)")
		seed   = flag.Int64("seed", 1, "instance seed")
	)
	flag.Parse()

	rng := stats.NewRand(*seed)
	mk := func(id, workers int, iters float64) *job.Job {
		return &job.Job{
			ID: id, Model: "tiny", Workers: workers,
			Epochs: int(iters), ItersPerEpoch: 1,
			Throughput: map[gpu.Type]float64{
				gpu.V100: 8 + rng.Uniform(0, 4),
				gpu.K80:  1 + rng.Uniform(0, 3),
			},
		}
	}
	in := offline.Instance{
		Cluster: cluster.New(gpu.Fleet{gpu.V100: 2}, gpu.Fleet{gpu.K80: 2}),
		Jobs: []*job.Job{
			mk(0, 2, 1200+rng.Uniform(0, 800)),
			mk(1, 1, 300+rng.Uniform(0, 400)),
			mk(2, 1, 500+rng.Uniform(0, 500)),
		},
		Rounds:      *rounds,
		RoundLength: 100,
		Utility:     core.EffectiveThroughput{},
	}
	fmt.Printf("instance: %s, %d jobs, %d rounds of %.0fs\n",
		in.Cluster, len(in.Jobs), in.Rounds, in.RoundLength)
	for _, j := range in.Jobs {
		fmt.Printf("  %v\n", j)
	}

	opt, err := offline.Optimal(in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "offlineopt: %v\n", err)
		os.Exit(1)
	}
	opts := core.DefaultOptions()
	opts.Utility = in.Utility
	online, alpha, err := offline.Replay(in, core.New(opts))
	if err != nil {
		fmt.Fprintf(os.Stderr, "offlineopt: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("\noffline optimum: %.3f utility (explored %d schedules)\n", opt.BestUtility, opt.Explored)
	fmt.Printf("Hadar online:    %.3f utility\n", online)
	if opt.BestUtility > 0 {
		fmt.Printf("achieved:        %.1f%% of OPT\n", 100*online/opt.BestUtility)
	}
	fmt.Printf("alpha:           %.2f  (Theorem 2 guarantees >= %.1f%% of OPT)\n",
		alpha, 100/(2*alpha))
	if len(opt.Schedule) > 0 {
		fmt.Println("\none optimal schedule:")
		for r, allocs := range opt.Schedule {
			fmt.Printf("  round %d:", r)
			for i, a := range allocs {
				fmt.Printf("  J%d=%v", i, a)
			}
			fmt.Println()
		}
	}
}
