// Command tracegen synthesizes Philly-like DNN training traces per the
// Hadar paper's recipe (Section IV.A) and writes them as JSON.
//
// Usage:
//
//	tracegen [-n 480] [-seed 1] [-pattern static|poisson] [-rate 0.02] [-o trace.json]
//
// The rate flag is the Poisson arrival rate in jobs/second and is only
// used with -pattern poisson.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		n       = flag.Int("n", 480, "number of jobs")
		seed    = flag.Int64("seed", 1, "random seed")
		pattern = flag.String("pattern", "static", "arrival pattern: static, poisson, or diurnal")
		rate    = flag.Float64("rate", 480.0/(7*3600), "poisson/diurnal arrival rate (jobs/second)")
		amp     = flag.Float64("amplitude", 0.6, "diurnal day/night amplitude in [0,1)")
		out     = flag.String("o", "", "output file (default stdout)")
		show    = flag.Bool("stats", false, "print trace statistics to stderr")
	)
	flag.Parse()

	cfg := trace.Config{NumJobs: *n, Seed: *seed, Rate: *rate, Amplitude: *amp}
	switch *pattern {
	case "static":
		cfg.Pattern = trace.Static
	case "poisson":
		cfg.Pattern = trace.Poisson
	case "diurnal":
		cfg.Pattern = trace.Diurnal
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown pattern %q\n", *pattern)
		os.Exit(2)
	}
	jobs, err := trace.Generate(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
	if *show {
		fmt.Fprint(os.Stderr, trace.Analyze(jobs))
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.Write(w, jobs); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}
