// Command experiments regenerates the Hadar paper's tables and figures.
//
// Usage:
//
//	experiments -all                # everything (full paper scale: slow)
//	experiments -fig 3a             # one figure: 3a 3b 4 5 6 7 8 9 10
//	experiments -table 3            # one table: 3 or 4
//	experiments -motivation         # the Section II.A toy example
//	experiments -failures           # node-outage robustness scenario
//	experiments -federation         # federation vs mega-cluster comparison
//	experiments -jobs 120           # scale the trace down for quick runs
//
// Results print as text tables mirroring the paper's rows/series; see
// EXPERIMENTS.md for paper-vs-measured commentary.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/export"
	"repro/internal/plot"
)

func main() {
	var (
		all        = flag.Bool("all", false, "run every experiment")
		fig        = flag.String("fig", "", "figure to run: 3a 3b 4 5 6 7 8 9 10")
		table      = flag.String("table", "", "table to run: 3 or 4")
		motivation = flag.Bool("motivation", false, "run the Section II.A example")
		failures   = flag.Bool("failures", false, "run the node-outage robustness scenario")
		fed        = flag.Bool("federation", false, "run the federation-vs-mega-cluster comparison")
		fedMembers = flag.Int("fed-members", 3, "member clusters in the federation comparison")
		jobs       = flag.Int("jobs", 480, "trace length (480 = paper scale)")
		seed       = flag.Int64("seed", 1, "random seed")
		maxScale   = flag.Int("fig7-max", 2048, "largest job count in the Fig. 7 sweep")
		csvDir     = flag.String("csv", "", "also write results as CSV files into this directory")
		doPlot     = flag.Bool("plot", false, "render ASCII charts of the figures")
		seeds      = flag.Int("seeds", 0, "run the static comparison across N seeds with bootstrap CIs")
	)
	flag.Parse()

	setup := experiments.DefaultSetup()
	setup.NumJobs = *jobs
	setup.Seed = *seed

	ran := false
	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	show := func(v fmt.Stringer, err error) {
		if err != nil {
			fail(err)
		}
		fmt.Println(v)
		if *doPlot {
			fmt.Println(renderPlot(v))
		}
		if *csvDir != "" {
			if err := writeCSV(*csvDir, v); err != nil {
				fail(err)
			}
		}
		ran = true
	}

	if *motivation || *all {
		show(experiments.Motivation())
	}
	if *failures || *all {
		show(experiments.FailureScenario(setup))
	}
	if *fed || *all {
		show(experiments.FederationCompare(setup, *fedMembers, nil))
	}
	if *seeds > 0 {
		show(experiments.SweepSeeds(setup, *seeds))
	}
	if *fig == "3a" || *all {
		show(experiments.Fig3(setup, false))
	}
	if *fig == "3b" || *all {
		show(experiments.Fig3(setup, true))
	}
	if *fig == "4" || *all {
		show(experiments.Fig4(setup))
	}
	if *fig == "5" || *all {
		show(experiments.Fig5(setup))
	}
	if *fig == "6" || *all {
		show(experiments.Fig6(setup))
	}
	if *fig == "7" || *all {
		show(experiments.Fig7(setup.Seed, *maxScale))
	}
	// The 60-GPU cluster sustains ~2 jobs/hour of the Philly-like mix;
	// the sweeps straddle that point so the load actually varies.
	if *fig == "8" || *all {
		show(experiments.Fig8(setup, []float64{1, 1.5, 2, 2.5, 3}))
	}
	if *fig == "9" || *all {
		show(experiments.Fig9(setup, []float64{6, 12, 24, 48}, []float64{1, 2, 3}))
	}
	if *fig == "10" || *all {
		show(experiments.Fig10(setup.Seed))
	}
	if *table == "3" || *all {
		show(experiments.Table3(setup.Seed))
	}
	if *table == "4" || *all {
		fmt.Println(experiments.Table4(setup.RoundLength))
		ran = true
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}

// writeCSV serializes a result into one or more CSV files named after
// its type.
func writeCSV(dir string, v fmt.Stringer) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	switch r := v.(type) {
	case *experiments.Fig3Result:
		if err := write("fig3_"+r.Arrival+"_cdf.csv", func(f *os.File) error {
			return export.CompletionCDF(f, r.Cmp)
		}); err != nil {
			return err
		}
		return write("fig3_"+r.Arrival+"_summary.csv", func(f *os.File) error {
			return export.Comparison(f, r.Cmp)
		})
	case *experiments.Fig4Result:
		return write("fig4_utilization.csv", func(f *os.File) error {
			return export.Comparison(f, r.Cmp)
		})
	case *experiments.Fig5Result:
		return write("fig5_ftf.csv", func(f *os.File) error {
			return export.Comparison(f, r.Cmp)
		})
	case *experiments.Fig6Result:
		return write("fig6_makespan.csv", func(f *os.File) error {
			return export.Comparison(f, r.Cmp)
		})
	case *experiments.Fig7Result:
		return write("fig7_scalability.csv", func(f *os.File) error {
			return export.Fig7(f, r)
		})
	case *experiments.Fig8Result:
		return write("fig8_rate_sweep.csv", func(f *os.File) error {
			return export.Fig8(f, r)
		})
	case *experiments.Fig9Result:
		return write("fig9_round_length.csv", func(f *os.File) error {
			return export.Fig9(f, r)
		})
	case *experiments.Fig10Result:
		return write("fig10_prototype_utilization.csv", func(f *os.File) error {
			return export.Comparison(f, r.Cmp)
		})
	case *experiments.Table3Result:
		if err := write("table3_physical.csv", func(f *os.File) error {
			return export.Comparison(f, r.Physical)
		}); err != nil {
			return err
		}
		return write("table3_simulated.csv", func(f *os.File) error {
			return export.Comparison(f, r.Simulated)
		})
	case *experiments.MotivationResult:
		return write("motivation.csv", func(f *os.File) error {
			return export.Comparison(f, r.Cmp)
		})
	case *experiments.FedCompareResult:
		return write("federation_compare.csv", func(f *os.File) error {
			return export.FedCompare(f, r)
		})
	case *experiments.FailureScenarioResult:
		if err := write("failures_outage.csv", func(f *os.File) error {
			return export.Comparison(f, r.Cmp)
		}); err != nil {
			return err
		}
		return write("failures_baseline.csv", func(f *os.File) error {
			return export.Comparison(f, r.Baseline)
		})
	}
	return nil // Table4 and others render text only
}

// renderPlot draws an ASCII chart for results that have a natural
// graphical form; other results return an empty string.
func renderPlot(v fmt.Stringer) string {
	switch r := v.(type) {
	case *experiments.Fig3Result:
		chart := &plot.LineChart{
			Title: "Fig. 3 (" + r.Arrival + "): completion CDF", Width: 72, Height: 18,
			XLabel: "hours", YLabel: "fraction complete",
		}
		for _, name := range r.Cmp.Order {
			var xs, ys []float64
			for _, p := range r.Cmp.Reports[name].CompletionCDF() {
				xs = append(xs, p.X/3600)
				ys = append(ys, p.Fraction)
			}
			chart.Series = append(chart.Series, plot.Series{Name: name, X: xs, Y: ys})
		}
		return chart.Render()
	case *experiments.Fig4Result:
		return utilizationBars("Fig. 4: GPU utilization", r.Cmp)
	case *experiments.Fig5Result:
		bars := &plot.BarChart{Title: "Fig. 5: average finish-time fairness (lower is better)"}
		for _, name := range r.Cmp.Order {
			bars.Labels = append(bars.Labels, name)
			bars.Values = append(bars.Values, r.Cmp.Reports[name].AvgFTF())
		}
		return bars.Render()
	case *experiments.Fig6Result:
		bars := &plot.BarChart{Title: "Fig. 6: makespan", Unit: "h"}
		for _, name := range r.Cmp.Order {
			bars.Labels = append(bars.Labels, name)
			bars.Values = append(bars.Values, r.Cmp.Reports[name].Makespan/3600)
		}
		return bars.Render()
	case *experiments.Fig7Result:
		chart := &plot.LineChart{
			Title: "Fig. 7: decision latency", Width: 72, Height: 14,
			XLabel: "jobs", YLabel: "ms",
		}
		var xs, hs, gs []float64
		for _, p := range r.Points {
			xs = append(xs, float64(p.Jobs))
			hs = append(hs, float64(p.HadarLatency.Microseconds())/1000)
			gs = append(gs, float64(p.GavelLatency.Microseconds())/1000)
		}
		chart.Series = []plot.Series{{Name: "hadar", X: xs, Y: hs}, {Name: "gavel", X: xs, Y: gs}}
		return chart.Render()
	case *experiments.Fig8Result:
		chart := &plot.LineChart{
			Title: "Fig. 8: average JCT vs arrival rate", Width: 72, Height: 14,
			XLabel: "jobs/hour", YLabel: "avg JCT (h)",
		}
		series := map[string]*plot.Series{}
		var order []string
		for _, p := range r.Points {
			s, ok := series[p.Scheduler]
			if !ok {
				s = &plot.Series{Name: p.Scheduler}
				series[p.Scheduler] = s
				order = append(order, p.Scheduler)
			}
			s.X = append(s.X, p.RatePerHour)
			s.Y = append(s.Y, p.AvgJCT/3600)
		}
		for _, name := range order {
			chart.Series = append(chart.Series, *series[name])
		}
		return chart.Render()
	case *experiments.Fig9Result:
		chart := &plot.LineChart{
			Title: "Fig. 9: avg JCT vs round length", Width: 72, Height: 14,
			XLabel: "round (min)", YLabel: "avg JCT (h)",
		}
		series := map[float64]*plot.Series{}
		var order []float64
		for _, p := range r.Points {
			s, ok := series[p.RatePerHour]
			if !ok {
				s = &plot.Series{Name: fmt.Sprintf("%.1f jobs/h", p.RatePerHour)}
				series[p.RatePerHour] = s
				order = append(order, p.RatePerHour)
			}
			s.X = append(s.X, p.RoundMinutes)
			s.Y = append(s.Y, p.AvgJCT/3600)
		}
		for _, rate := range order {
			chart.Series = append(chart.Series, *series[rate])
		}
		return chart.Render()
	case *experiments.Fig10Result:
		return utilizationBars("Fig. 10: prototype GPU utilization", r.Cmp)
	case *experiments.FedCompareResult:
		bars := &plot.BarChart{Title: "Federation vs mega-cluster: average JCT", Unit: "h"}
		for _, s := range r.Series {
			bars.Labels = append(bars.Labels, s.Series)
			bars.Values = append(bars.Values, s.Report.AvgJCT()/3600)
		}
		return bars.Render()
	}
	return ""
}

func utilizationBars(title string, cmp *experiments.Comparison) string {
	bars := &plot.BarChart{Title: title, Unit: "%"}
	for _, name := range cmp.Order {
		bars.Labels = append(bars.Labels, name)
		bars.Values = append(bars.Values, 100*cmp.Reports[name].Utilization())
	}
	return bars.Render()
}
